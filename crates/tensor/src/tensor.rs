//! The dense row-major `f32` tensor type.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major `f32` tensor.
///
/// Rank 1 (vectors) and rank 2 (matrices whose rows are samples) are the
/// fast paths used throughout the PILOTE workspace. The element buffer is
/// always exactly `shape.len()` long — an invariant enforced by every
/// constructor and preserved by every operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from raw data and a shape, validating the length.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { len: data.len(), expected: shape.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Builds a rank-1 tensor from a slice.
    pub fn vector(data: &[f32]) -> Self {
        Tensor { shape: Shape::vector(data.len()), data: data.to_vec() }
    }

    /// Builds a rank-2 tensor from nested rows.
    ///
    /// Returns an error if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(TensorError::ShapeMismatch {
                    left: vec![n_rows, n_cols],
                    right: vec![row.len()],
                    op: "from_rows",
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Tensor { shape: Shape::matrix(n_rows, n_cols), data })
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rows of a rank-2 tensor (panics otherwise — see [`Shape::rows`]).
    pub fn rows(&self) -> usize {
        self.shape.rows()
    }

    /// Columns of a rank-2 tensor (panics otherwise — see [`Shape::cols`]).
    pub fn cols(&self) -> usize {
        self.shape.cols()
    }

    /// Read-only view of the flat element buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat element buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Unchecked 2-D accessor; hot-path helper for rank-2 tensors.
    ///
    /// # Panics
    /// Debug-asserts bounds; out-of-bounds access in release is prevented by
    /// the slice index panic.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[row * self.shape.cols() + col]
    }

    /// Row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let cols = self.cols();
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutable row `i` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let cols = self.cols();
        &mut self.data[i * cols..(i + 1) * cols]
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Reinterprets the buffer under a new shape with the same length.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch { len: self.data.len(), expected: shape.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Materialised transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "transpose" });
        }
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; r * c];
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for bi in (0..r).step_by(B) {
            for bj in (0..c).step_by(B) {
                for i in bi..(bi + B).min(r) {
                    for j in bj..(bj + B).min(c) {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        Ok(Tensor { shape: Shape::matrix(c, r), data: out })
    }

    /// Extracts the rows at `indices` (rank-2 only), in the given order.
    ///
    /// The gather primitive behind contrastive pair batching; row copies
    /// are band-parallel over the output (see `docs/THREADING.md`).
    ///
    /// ```
    /// use pilote_tensor::Tensor;
    /// let t = Tensor::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
    /// let picked = t.select_rows(&[2, 0, 2]).unwrap();
    /// assert_eq!(picked.as_slice(), &[2.0, 0.0, 2.0]);
    /// ```
    pub fn select_rows(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "select_rows" });
        }
        let cols = self.cols();
        let rows = self.rows();
        if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
            return Err(TensorError::OutOfBounds { index: bad, bound: rows, op: "select_rows" });
        }
        let mut data = vec![0.0f32; indices.len() * cols];
        if cols > 0 {
            let src = self.as_slice();
            let threads = crate::parallel::effective_threads(indices.len() * cols);
            crate::parallel::for_each_band(&mut data, cols, threads, |i0, band| {
                for (off, chunk) in band.chunks_mut(cols).enumerate() {
                    let i = indices[i0 + off];
                    chunk.copy_from_slice(&src[i * cols..(i + 1) * cols]);
                }
            });
        }
        Ok(Tensor { shape: Shape::matrix(indices.len(), cols), data })
    }

    /// Vertically stacks rank-2 tensors with matching column counts.
    pub fn vstack(tensors: &[&Tensor]) -> Result<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::Empty { op: "vstack" });
        }
        let cols = tensors[0].cols();
        let mut rows = 0usize;
        for t in tensors {
            if t.rank() != 2 || t.cols() != cols {
                return Err(TensorError::ShapeMismatch {
                    left: tensors[0].shape.dims().to_vec(),
                    right: t.shape.dims().to_vec(),
                    op: "vstack",
                });
            }
            rows += t.rows();
        }
        let mut data = Vec::with_capacity(rows * cols);
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        Ok(Tensor { shape: Shape::matrix(rows, cols), data })
    }

    /// Contiguous row range `[start, end)` of a rank-2 tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "slice_rows" });
        }
        if start > end || end > self.rows() {
            return Err(TensorError::OutOfBounds { index: end, bound: self.rows(), op: "slice_rows" });
        }
        let cols = self.cols();
        Ok(Tensor {
            shape: Shape::matrix(end - start, cols),
            data: self.data[start * cols..end * cols].to_vec(),
        })
    }

    // ------------------------------------------------------------------
    // Scalar maps
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// `true` when every element is finite (no NaN/inf) — used liberally in
    /// debug assertions across the training stack.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another tensor of identical
    /// shape; the workhorse of gradient-checking tests.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Tensor{}", self.shape)?;
        if self.rank() == 2 {
            let show_rows = self.rows().min(8);
            for i in 0..show_rows {
                let row = self.row(i);
                let show_cols = row.len().min(10);
                write!(f, "  [")?;
                for (j, v) in row[..show_cols].iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:.4}")?;
                }
                if row.len() > show_cols {
                    write!(f, ", …")?;
                }
                writeln!(f, "]")?;
            }
            if self.rows() > show_rows {
                writeln!(f, "  … ({} rows total)", self.rows())?;
            }
        } else {
            let show = self.len().min(12);
            write!(f, "  [")?;
            for (j, v) in self.data[..show].iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if self.len() > show {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], [2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.rows(), 3);
        assert_eq!(tt.cols(), 2);
        assert_eq!(tt.at(0, 1), 4.0);
        assert_eq!(tt.transpose().unwrap(), t);
    }

    #[test]
    fn transpose_large_blocked() {
        let (r, c) = (70, 45);
        let data: Vec<f32> = (0..r * c).map(|i| i as f32).collect();
        let t = Tensor::from_vec(data, [r, c]).unwrap();
        let tt = t.transpose().unwrap();
        for i in 0..r {
            for j in 0..c {
                assert_eq!(t.at(i, j), tt.at(j, i));
            }
        }
    }

    #[test]
    fn select_rows_orders_and_repeats() {
        let t = Tensor::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let s = t.select_rows(&[2, 0, 2]).unwrap();
        assert_eq!(s.as_slice(), &[2.0, 0.0, 2.0]);
        assert!(t.select_rows(&[3]).is_err());
    }

    #[test]
    fn vstack_concatenates() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Tensor::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let v = Tensor::vstack(&[&a, &b]).unwrap();
        assert_eq!(v.rows(), 3);
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn vstack_rejects_mismatched_cols() {
        let a = Tensor::zeros([1, 2]);
        let b = Tensor::zeros([1, 3]);
        assert!(Tensor::vstack(&[&a, &b]).is_err());
    }

    #[test]
    fn slice_rows_bounds() {
        let t = Tensor::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.as_slice(), &[1.0, 2.0]);
        assert!(t.slice_rows(2, 4).is_err());
        assert_eq!(t.slice_rows(1, 1).unwrap().rows(), 0);
    }

    #[test]
    fn map_and_scale() {
        let t = Tensor::vector(&[1.0, -2.0, 3.0]);
        assert_eq!(t.map(f32::abs).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.scale(2.0).as_slice(), &[2.0, -4.0, 6.0]);
        assert_eq!(t.add_scalar(1.0).as_slice(), &[2.0, -1.0, 4.0]);
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::vector(&[1.0, 2.0]);
        assert!(t.all_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn max_abs_diff_requires_same_shape() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        assert!(a.max_abs_diff(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 7.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn display_does_not_panic_on_shapes() {
        let t = Tensor::zeros([20, 40]);
        let s = format!("{t}");
        assert!(s.contains("rows total"));
        let v = Tensor::zeros([100]);
        assert!(format!("{v}").contains('…'));
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
