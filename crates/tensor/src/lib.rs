//! # pilote-tensor
//!
//! Dense `f32` tensor substrate for the PILOTE reproduction.
//!
//! The PILOTE paper (EDBT 2023) implements its embedding network in PyTorch;
//! no comparable deep-learning substrate exists in the offline Rust crate
//! set, so this crate provides the numerical foundation from scratch:
//!
//! * [`Tensor`] — a contiguous, row-major, heap-allocated `f32` tensor with
//!   rank 1/2 fast paths (the workloads here are batches of feature vectors
//!   and weight matrices).
//! * Element-wise and broadcast arithmetic ([`ops`]), matrix
//!   multiplication ([`matmul`]) backed by the packed, register-tiled
//!   microkernel in [`pack`] (panel packing, runtime SIMD-tier dispatch,
//!   fused epilogues — contract in `docs/KERNELS.md`), reductions
//!   ([`reduce`]) and small linear-algebra routines ([`linalg`]) such as
//!   pairwise squared Euclidean distances (the workhorse of both the
//!   contrastive loss and the nearest-class-mean classifier, fused into
//!   the GEMM epilogue).
//! * A small deterministic RNG ([`rng`]) (SplitMix64-seeded xoshiro256++
//!   with a Box–Muller normal sampler) so that every experiment in the
//!   benchmark harness is reproducible from a single `u64` seed.
//! * Weight initialisation schemes ([`init`]).
//!
//! Design notes
//! ------------
//! * All shapes are validated eagerly; shape errors are returned as
//!   [`TensorError`] from fallible entry points, while the infallible
//!   operator overloads (`+`, `-`, `*`) panic with a descriptive message —
//!   mirroring the convention of mainstream numeric libraries.
//! * Storage is always contiguous; transposition is materialised. For the
//!   matrix sizes used by PILOTE (≤ a few thousand rows, ≤ 1024 columns)
//!   this is both simpler and faster than stride gymnastics.
//! * Hot kernels are parallelised by the [`parallel`] band layer with a
//!   bitwise-determinism guarantee: any thread count produces bit-identical
//!   results (contract in `docs/THREADING.md`).

#![warn(missing_docs)]

pub mod error;
pub mod init;
pub mod linalg;
pub mod matmul;
pub mod ops;
pub mod pack;
pub mod parallel;
pub mod reduce;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use stats::Welford;

pub use error::TensorError;
pub use parallel::ThreadConfig;
pub use rng::Rng64;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
