//! Shape bookkeeping for dense row-major tensors.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};

/// The shape of a dense row-major tensor.
///
/// Rank 1 and rank 2 are the common cases in this workspace (feature
/// vectors and batches of feature vectors); higher ranks are representable
/// but only the generic element-wise machinery operates on them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// A rank-1 shape of length `n`.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A rank-2 shape with `rows` rows and `cols` columns.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of axis `axis`, or an error if out of range.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.0.get(axis).copied().ok_or(TensorError::OutOfBounds {
            index: axis,
            bound: self.0.len(),
            op: "shape.dim",
        })
    }

    /// Rows of a rank-2 shape.
    ///
    /// # Panics
    /// Panics if the shape is not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows() requires a rank-2 shape, got {:?}", self.0);
        self.0[0]
    }

    /// Columns of a rank-2 shape.
    ///
    /// # Panics
    /// Panics if the shape is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() requires a rank-2 shape, got {:?}", self.0);
        self.0[1]
    }

    /// Row-major strides for this shape (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Returns an error if the index rank or any component is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.0.len() {
            return Err(TensorError::RankMismatch {
                got: index.len(),
                expected: self.0.len(),
                op: "shape.offset",
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::OutOfBounds { index: i, bound: d, op: "shape.offset" });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::matrix(3, 4).len(), 12);
        assert_eq!(Shape::vector(7).len(), 7);
        assert_eq!(Shape::new(vec![2, 3, 4]).len(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::matrix(5, 7).strides(), vec![7, 1]);
        assert_eq!(Shape::vector(9).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_manual_row_major() {
        let s = Shape::matrix(3, 4);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 6);
        assert_eq!(s.offset(&[2, 3]).unwrap(), 11);
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::matrix(3, 4);
        assert!(s.offset(&[3, 0]).is_err());
        assert!(s.offset(&[0, 4]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn zero_dim_shape_is_empty() {
        assert!(Shape::matrix(0, 10).is_empty());
        assert!(!Shape::matrix(1, 1).is_empty());
    }

    #[test]
    fn conversions_agree() {
        let a: Shape = vec![2, 3].into();
        let b: Shape = [2usize, 3].into();
        assert_eq!(a, b);
    }
}
