//! Element-wise and broadcast arithmetic.
//!
//! Supported broadcast forms (all that the NN stack needs):
//!
//! * identical shapes — plain element-wise;
//! * matrix `[n, d]` (+|-|*|/) row vector `[d]` — the bias/affine pattern;
//! * column broadcast via [`Tensor::mul_col`] for per-row scaling.
//!
//! Fallible named methods (`try_add`, …) return [`TensorError`]; the
//! operator overloads panic on shape mismatch with the same message.

use crate::error::TensorError;
use crate::parallel;
use crate::tensor::Tensor;
use crate::Result;

#[inline]
fn zip_apply(
    a: &Tensor,
    b: &Tensor,
    op: &'static str,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<Tensor> {
    let n = a.len();
    let threads = parallel::effective_threads(n);
    if a.shape() == b.shape() {
        let (xs, ys) = (a.as_slice(), b.as_slice());
        let mut data = vec![0.0f32; n];
        parallel::for_each_band(&mut data, 1, threads, |i0, band| {
            for (off, o) in band.iter_mut().enumerate() {
                let i = i0 + off;
                *o = f(xs[i], ys[i]);
            }
        });
        return Tensor::from_vec(data, a.shape().clone());
    }
    // matrix [n, d] op row-vector [d]
    if a.rank() == 2 && b.rank() == 1 && a.cols() == b.len() {
        let d = a.cols();
        let (xs, bv) = (a.as_slice(), b.as_slice());
        let mut data = vec![0.0f32; n];
        parallel::for_each_band(&mut data, 1, threads, |i0, band| {
            for (off, o) in band.iter_mut().enumerate() {
                let i = i0 + off;
                *o = f(xs[i], bv[i % d]);
            }
        });
        return Tensor::from_vec(data, a.shape().clone());
    }
    Err(TensorError::ShapeMismatch {
        left: a.shape().dims().to_vec(),
        right: b.shape().dims().to_vec(),
        op,
    })
}

impl Tensor {
    /// Element-wise / broadcast addition.
    ///
    /// ```
    /// use pilote_tensor::Tensor;
    /// let m = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
    /// let bias = Tensor::vector(&[10.0, 20.0]);
    /// // Row-vector broadcast: the bias pattern of a dense layer.
    /// assert_eq!(m.try_add(&bias).unwrap().as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    /// ```
    pub fn try_add(&self, other: &Tensor) -> Result<Tensor> {
        zip_apply(self, other, "add", |x, y| x + y)
    }

    /// Element-wise / broadcast subtraction.
    pub fn try_sub(&self, other: &Tensor) -> Result<Tensor> {
        zip_apply(self, other, "sub", |x, y| x - y)
    }

    /// Element-wise / broadcast (Hadamard) multiplication.
    pub fn try_mul(&self, other: &Tensor) -> Result<Tensor> {
        zip_apply(self, other, "mul", |x, y| x * y)
    }

    /// Element-wise / broadcast division.
    pub fn try_div(&self, other: &Tensor) -> Result<Tensor> {
        zip_apply(self, other, "div", |x, y| x / y)
    }

    /// In-place `self += alpha * other` (identical shapes only) — the axpy
    /// primitive used by all optimizer updates; avoids a temporary.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "axpy",
            });
        }
        let threads = parallel::effective_threads(self.len());
        let ys = other.as_slice();
        parallel::for_each_band(self.as_mut_slice(), 1, threads, |i0, band| {
            for (off, x) in band.iter_mut().enumerate() {
                *x += alpha * ys[i0 + off];
            }
        });
        Ok(())
    }

    /// Multiplies each row `i` of a rank-2 tensor by `col[i]`.
    pub fn mul_col(&self, col: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || col.rank() != 1 || col.len() != self.rows() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: col.shape().dims().to_vec(),
                op: "mul_col",
            });
        }
        let d = self.cols();
        let cv = col.as_slice();
        let xs = self.as_slice();
        let mut data = vec![0.0f32; xs.len()];
        let threads = parallel::effective_threads(xs.len());
        parallel::for_each_band(&mut data, 1, threads, |i0, band| {
            for (off, o) in band.iter_mut().enumerate() {
                let i = i0 + off;
                *o = xs[i] * cv[i / d];
            }
        });
        Tensor::from_vec(data, self.shape().clone())
    }

    /// Dot product of two rank-1 tensors of equal length.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.rank() != 1 || other.rank() != 1 || self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "dot",
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&x, &y)| x * y)
            .sum())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $try:ident) => {
        impl std::ops::$trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$try(rhs).unwrap_or_else(|e| panic!("{e}"))
            }
        }
        impl std::ops::$trait<Tensor> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, try_add);
impl_binop!(Sub, sub, try_sub);
impl_binop!(Mul, mul, try_mul);
impl_binop!(Div, div, try_div);

impl std::ops::Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f32>]) -> Tensor {
        Tensor::from_rows(rows).unwrap()
    }

    #[test]
    fn elementwise_same_shape() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[4.0, 5.0, 6.0]);
        assert_eq!(a.try_add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.try_sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.try_mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.try_div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn row_broadcast() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = Tensor::vector(&[10.0, 20.0]);
        let out = a.try_add(&bias).unwrap();
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn broadcast_rejects_bad_dims() {
        let a = m(&[vec![1.0, 2.0]]);
        let b = Tensor::vector(&[1.0, 2.0, 3.0]);
        assert!(a.try_add(&b).is_err());
    }

    #[test]
    fn operators_match_try_variants() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, -2.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 8.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "add")]
    fn operator_panics_on_mismatch() {
        let a = Tensor::vector(&[1.0]);
        let b = Tensor::vector(&[1.0, 2.0]);
        let _ = &a + &b;
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::vector(&[1.0, 2.0]);
        let g = Tensor::vector(&[10.0, 10.0]);
        a.axpy(-0.1, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 1.0]);
        assert!(a.axpy(1.0, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn mul_col_scales_rows() {
        let a = m(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let c = Tensor::vector(&[3.0, 0.5]);
        let out = a.mul_col(&c).unwrap();
        assert_eq!(out.as_slice(), &[3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn parallel_bitwise_matches_serial() {
        use crate::parallel::{self, ThreadConfig};
        use crate::rng::Rng64;
        let _guard = parallel::TEST_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = Rng64::new(11);
        let a = Tensor::from_vec((0..41 * 17).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [41, 17])
            .unwrap();
        let b = Tensor::from_vec((0..41 * 17).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [41, 17])
            .unwrap();
        let row = Tensor::from_vec((0..17).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [17]).unwrap();
        let col = Tensor::from_vec((0..41).map(|_| rng.normal_f32(0.0, 1.0)).collect(), [41]).unwrap();

        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let mut axpy_serial = a.clone();
        axpy_serial.axpy(0.37, &b).unwrap();
        let serial = (
            a.try_add(&b).unwrap(),
            a.try_mul(&row).unwrap(),
            a.mul_col(&col).unwrap(),
            axpy_serial,
        );
        for threads in [2usize, 3, 5] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            assert_eq!(a.try_add(&b).unwrap(), serial.0);
            assert_eq!(a.try_mul(&row).unwrap(), serial.1);
            assert_eq!(a.mul_col(&col).unwrap(), serial.2);
            let mut axpy_par = a.clone();
            axpy_par.axpy(0.37, &b).unwrap();
            assert_eq!(axpy_par, serial.3);
        }
        parallel::configure(saved);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::zeros([2])).is_err());
    }
}
