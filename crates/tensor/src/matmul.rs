//! Matrix multiplication.
//!
//! All three matrix–matrix products (`matmul`, `matmul_t`, `t_matmul`) are
//! thin shape-checking wrappers around the one packed, register-tiled
//! kernel in [`crate::pack`]: operands are packed into contiguous panels
//! (a transposed operand is just a different packing gather, not a separate
//! loop nest) and each `MR × NR` output tile is accumulated in registers
//! over the full `k` extent in fixed ascending-`k` order. Layout details
//! and the performance model live in `docs/KERNELS.md`.
//!
//! All kernels are parallelised over contiguous bands of *output rows* via
//! [`crate::parallel`]. Each output element is accumulated in ascending `k`
//! order by exactly one thread, so results are bitwise-identical at every
//! thread count (see `docs/THREADING.md`).
//!
//! Zeros in either operand are **not** skipped: `0 · NaN` must stay `NaN`
//! and `0 · ∞` must stay `NaN`, so a non-finite value planted in one
//! operand propagates to the product no matter what the other operand
//! holds (regression-tested below).

use crate::error::TensorError;
use crate::pack::{self, Epilogue, Operand};
use crate::parallel;
use crate::tensor::Tensor;
use crate::Result;
use pilote_obs::work::{self, KernelKind};

/// The pre-PR serial `i-k-j` loop (KB=64 k-blocking, zero-skip removed),
/// kept as the measurement baseline for `repro kernels` and the ci.sh
/// kernels gate: the packed kernel must never be slower than this loop on
/// the committed reference shape. Serial, unrecorded (no flop accounting),
/// not part of the public API.
#[doc(hidden)]
pub fn matmul_unpacked_reference(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().dims().to_vec(),
            right: b.shape().dims().to_vec(),
            op: "matmul_unpacked_reference",
        });
    }
    const KB: usize = 64;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for k0 in (0..k).step_by(KB) {
        let k1 = (k0 + KB).min(k);
        for i in 0..m {
            let a_row = &av[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = a_row[kk];
                let b_row = &bv[kk * n..(kk + 1) * n];
                for (o, &bvj) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bvj;
                }
            }
        }
    }
    Tensor::from_vec(out, [m, n])
}

impl Tensor {
    /// Matrix product `self @ other` for rank-2 operands.
    ///
    /// ```
    /// use pilote_tensor::Tensor;
    /// let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
    /// let b = Tensor::eye(2);
    /// assert_eq!(a.matmul(&b).unwrap(), a);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "matmul" });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch { got: other.rank(), expected: 2, op: "matmul" });
        }
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "matmul",
            });
        }
        // Shape-derived work estimate, recorded on the dispatching thread
        // before any band fan-out (see docs/OBSERVABILITY.md).
        work::record(KernelKind::MatMul, 2 * (m as u64) * (n as u64) * (k as u64));
        let mut out = vec![0.0f32; m * n];
        let threads = parallel::effective_threads(m * n * k);
        pack::gemm(
            Operand::plain(self.as_slice(), k),
            Operand::plain(other.as_slice(), n),
            (m, k, n),
            threads,
            Epilogue::None,
            &mut out,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// `self @ otherᵀ` without materialising the transpose.
    ///
    /// This is the hot pattern in backprop (`dX = dY @ Wᵀ`) and in pairwise
    /// distance computations (`X @ Yᵀ`); the transpose is absorbed into the
    /// B-panel packing gather.
    ///
    /// ```
    /// use pilote_tensor::Tensor;
    /// let a = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
    /// let b = Tensor::from_rows(&[vec![3.0, 4.0]]).unwrap();
    /// // a @ bᵀ is [2, 1]: the dot of each row of `a` with the row of `b`.
    /// assert_eq!(a.matmul_t(&b).unwrap().as_slice(), &[3.0, 8.0]);
    /// ```
    pub fn matmul_t(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                got: if self.rank() != 2 { self.rank() } else { other.rank() },
                expected: 2,
                op: "matmul_t",
            });
        }
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "matmul_t",
            });
        }
        work::record(KernelKind::MatMulT, 2 * (m as u64) * (n as u64) * (k as u64));
        let mut out = vec![0.0f32; m * n];
        let threads = parallel::effective_threads(m * n * k);
        pack::gemm(
            Operand::plain(self.as_slice(), k),
            Operand::transposed(other.as_slice(), k),
            (m, k, n),
            threads,
            Epilogue::None,
            &mut out,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// `selfᵀ @ other` without materialising the transpose.
    ///
    /// Backprop's weight-gradient pattern (`dW = Xᵀ @ dY`); the transpose
    /// is absorbed into the A-panel packing gather.
    pub fn t_matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                got: if self.rank() != 2 { self.rank() } else { other.rank() },
                expected: 2,
                op: "t_matmul",
            });
        }
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
                op: "t_matmul",
            });
        }
        work::record(KernelKind::TMatMul, 2 * (m as u64) * (n as u64) * (k as u64));
        let mut out = vec![0.0f32; m * n];
        let threads = parallel::effective_threads(m * n * k);
        pack::gemm(
            Operand::transposed(self.as_slice(), m),
            Operand::plain(other.as_slice(), n),
            (m, k, n),
            threads,
            Epilogue::None,
            &mut out,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix–vector product `self @ v` for a rank-2 `self` and rank-1 `v`.
    ///
    /// ```
    /// use pilote_tensor::Tensor;
    /// let a = Tensor::eye(3);
    /// let v = Tensor::vector(&[1.0, 2.0, 3.0]);
    /// assert_eq!(a.matvec(&v).unwrap().as_slice(), &[1.0, 2.0, 3.0]);
    /// ```
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || v.rank() != 1 || self.cols() != v.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: v.shape().dims().to_vec(),
                op: "matvec",
            });
        }
        let (m, k) = (self.rows(), self.cols());
        work::record(KernelKind::MatVec, 2 * (m as u64) * (k as u64));
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        let threads = parallel::effective_threads(m * k);
        parallel::for_each_band(&mut out, 1, threads, |i0, band| {
            for (off, o) in band.iter_mut().enumerate() {
                let i = i0 + off;
                let row = &a[i * k..(i + 1) * k];
                *o = row.iter().zip(x).map(|(&p, &q)| p * q).sum();
            }
        });
        Tensor::from_vec(out, [m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random(rng: &mut Rng64, r: usize, c: usize) -> Tensor {
        let data: Vec<f32> = (0..r * c).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        Tensor::from_vec(data, [r, c]).unwrap()
    }

    /// Reference O(n³) triple loop.
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(i, kk) * b.at(kk, j);
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matches_naive_on_odd_sizes() {
        let mut rng = Rng64::new(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 33, 9), (70, 65, 130)] {
            let a = random(&mut rng, m, k);
            let b = random(&mut rng, k, n);
            let fast = a.matmul(&b).unwrap();
            let slow = naive(&a, &b);
            assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3, "size ({m},{k},{n})");
        }
    }

    #[test]
    fn packed_is_bitwise_identical_to_unpacked_reference() {
        // The register-tiled kernel performs, per output element, the same
        // ascending-k mul/add chain as the pre-PR loop — so the rewrite
        // must be invisible at the bit level, not just within tolerance.
        let mut rng = Rng64::new(9);
        for &(m, k, n) in &[(3, 5, 2), (17, 64, 9), (33, 65, 37), (70, 63, 130)] {
            let a = random(&mut rng, m, k);
            let b = random(&mut rng, k, n);
            let packed = a.matmul(&b).unwrap();
            let reference = matmul_unpacked_reference(&a, &b).unwrap();
            assert_eq!(packed.as_slice(), reference.as_slice(), "size ({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let mut rng = Rng64::new(2);
        let a = random(&mut rng, 13, 7);
        let b = random(&mut rng, 11, 7);
        let fast = a.matmul_t(&b).unwrap();
        let reference = a.matmul(&b.transpose().unwrap()).unwrap();
        assert!(fast.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let mut rng = Rng64::new(3);
        let a = random(&mut rng, 9, 14);
        let b = random(&mut rng, 9, 6);
        let fast = a.t_matmul(&b).unwrap();
        let reference = a.transpose().unwrap().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng64::new(4);
        let a = random(&mut rng, 8, 5);
        let v = Tensor::vector(&[1.0, -1.0, 0.5, 2.0, 0.0]);
        let got = a.matvec(&v).unwrap();
        let reference = a.matmul(&v.reshape([5, 1]).unwrap()).unwrap();
        for i in 0..8 {
            assert!((got.as_slice()[i] - reference.at(i, 0)).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 5]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_t(&b).is_err());
        assert!(a.t_matmul(&b).is_err());
        assert!(a.matvec(&Tensor::zeros([4])).is_err());
        assert!(matmul_unpacked_reference(&a, &b).is_err());
        let v = Tensor::zeros([3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::new(5);
        let a = random(&mut rng, 6, 6);
        let i = Tensor::eye(6);
        assert!(a.matmul(&i).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
        assert!(i.matmul(&a).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
    }

    /// Regression for the zero-skip bug: a NaN planted in one operand must
    /// propagate to the product even when the *other* operand is zero at
    /// every coefficient that touches it (`0 · NaN = NaN`). The old
    /// `matmul_band`/`t_matmul` loops skipped the update when `aik == 0`,
    /// silently masking the NaN.
    #[test]
    fn nan_propagates_through_every_kernel() {
        let m = 5;
        let k = 7;
        let n = 6;
        // A is all zeros — the exact shape of the old skip.
        let a = Tensor::zeros([m, k]);
        let mut b = Tensor::zeros([k, n]);
        b.set(&[3, 2], f32::NAN).unwrap();

        // matmul: column 2 of the product must be NaN in every row.
        let c = a.matmul(&b).unwrap();
        for i in 0..m {
            assert!(c.at(i, 2).is_nan(), "matmul row {i}");
            assert_eq!(c.at(i, 0), 0.0);
        }

        // matmul_t: B is [n, k] with a NaN in row 4 → column 4 all NaN.
        let mut bt = Tensor::zeros([n, k]);
        bt.set(&[4, 3], f32::NAN).unwrap();
        let c = a.matmul_t(&bt).unwrap();
        for i in 0..m {
            assert!(c.at(i, 4).is_nan(), "matmul_t row {i}");
            assert_eq!(c.at(i, 0), 0.0);
        }

        // t_matmul: A is [k, m] all-zero, NaN in B row 3 → column 2 all NaN.
        let at = Tensor::zeros([k, m]);
        let c = at.t_matmul(&b).unwrap();
        for i in 0..m {
            assert!(c.at(i, 2).is_nan(), "t_matmul row {i}");
            assert_eq!(c.at(i, 0), 0.0);
        }

        // matvec: NaN in v reaches every output element.
        let mut v = Tensor::zeros([k]);
        v.as_mut_slice()[1] = f32::NAN;
        let c = a.matvec(&v).unwrap();
        for i in 0..m {
            assert!(c.as_slice()[i].is_nan(), "matvec row {i}");
        }

        // And the unpacked measurement baseline agrees with the packed
        // kernel on the same poisoned inputs.
        let reference = matmul_unpacked_reference(&a, &b).unwrap();
        let packed = a.matmul(&b).unwrap();
        assert_eq!(
            packed.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            reference.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
    }

    /// Same guarantee for infinities: `0 · ∞ = NaN`, never silently 0.
    #[test]
    fn infinity_is_not_masked_by_zeros() {
        let a = Tensor::zeros([2, 3]);
        let mut b = Tensor::zeros([3, 2]);
        b.set(&[1, 1], f32::INFINITY).unwrap();
        let c = a.matmul(&b).unwrap();
        for i in 0..2 {
            assert!(c.at(i, 1).is_nan(), "0·∞ must be NaN, row {i}");
        }
    }

    /// Parallel and serial paths must agree bit for bit, for every kernel
    /// in the matmul family, at several thread counts.
    #[test]
    fn parallel_bitwise_matches_serial() {
        use crate::parallel::{self, ThreadConfig};
        let _guard = parallel::TEST_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = Rng64::new(6);
        let a = random(&mut rng, 37, 53);
        let b = random(&mut rng, 53, 29);
        let bt = random(&mut rng, 29, 53);
        let v = random(&mut rng, 1, 53).reshape([53]).unwrap();

        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let serial = (
            a.matmul(&b).unwrap(),
            a.matmul_t(&bt).unwrap(),
            a.t_matmul(&a).unwrap(),
            a.matvec(&v).unwrap(),
        );
        for threads in [2usize, 3, 4] {
            // Threshold 0 forces the parallel path even on tiny inputs.
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            assert_eq!(a.matmul(&b).unwrap().as_slice(), serial.0.as_slice());
            assert_eq!(a.matmul_t(&bt).unwrap().as_slice(), serial.1.as_slice());
            assert_eq!(a.t_matmul(&a).unwrap().as_slice(), serial.2.as_slice());
            assert_eq!(a.matvec(&v).unwrap().as_slice(), serial.3.as_slice());
        }
        parallel::configure(saved);
    }
}
