//! Reductions: sums, means, variances, extrema, argmax — whole-tensor and
//! per-axis (rank-2) variants.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Axis selector for rank-2 reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Reduce over rows: output has one entry per column.
    Rows,
    /// Reduce over columns: output has one entry per row.
    Cols,
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // f64 accumulator: the training loop sums thousands of squared
        // distances; f32 accumulation loses precision noticeably there.
        self.as_slice().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        self.sum() / self.len() as f32
    }

    /// Population variance of all elements (0 for an empty tensor).
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.mean() as f64;
        let ss: f64 = self.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum();
        (ss / self.len() as f64) as f32
    }

    /// Maximum element.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.max(x))))
            .ok_or(TensorError::Empty { op: "max" })
    }

    /// Minimum element.
    pub fn min(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.min(x))))
            .ok_or(TensorError::Empty { op: "min" })
    }

    /// Index of the maximum element of a rank-1 tensor (first on ties).
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0usize;
        let mut best_v = self.as_slice()[0];
        for (i, &v) in self.as_slice().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        Ok(best)
    }

    /// Index of the minimum element of a rank-1 tensor (first on ties).
    pub fn argmin(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "argmin" });
        }
        let mut best = 0usize;
        let mut best_v = self.as_slice()[0];
        for (i, &v) in self.as_slice().iter().enumerate().skip(1) {
            if v < best_v {
                best = i;
                best_v = v;
            }
        }
        Ok(best)
    }

    /// Per-axis sum of a rank-2 tensor.
    pub fn sum_axis(&self, axis: Axis) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "sum_axis" });
        }
        let (r, c) = (self.rows(), self.cols());
        match axis {
            Axis::Rows => {
                let mut out = vec![0.0f64; c];
                for i in 0..r {
                    for (o, &v) in out.iter_mut().zip(self.row(i)) {
                        *o += v as f64;
                    }
                }
                Tensor::from_vec(out.into_iter().map(|x| x as f32).collect(), [c])
            }
            Axis::Cols => {
                let mut out = Vec::with_capacity(r);
                for i in 0..r {
                    out.push(self.row(i).iter().map(|&v| v as f64).sum::<f64>() as f32);
                }
                Tensor::from_vec(out, [r])
            }
        }
    }

    /// Per-axis mean of a rank-2 tensor.
    pub fn mean_axis(&self, axis: Axis) -> Result<Tensor> {
        let (r, c) = (self.rows(), self.cols());
        let n = match axis {
            Axis::Rows => r,
            Axis::Cols => c,
        };
        let s = self.sum_axis(axis)?;
        Ok(if n == 0 { s } else { s.scale(1.0 / n as f32) })
    }

    /// Per-axis population variance of a rank-2 tensor.
    pub fn var_axis(&self, axis: Axis) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "var_axis" });
        }
        let (r, c) = (self.rows(), self.cols());
        let mean = self.mean_axis(axis)?;
        match axis {
            Axis::Rows => {
                let mut out = vec![0.0f64; c];
                for i in 0..r {
                    for (j, &v) in self.row(i).iter().enumerate() {
                        let d = v as f64 - mean.as_slice()[j] as f64;
                        out[j] += d * d;
                    }
                }
                let denom = r.max(1) as f64;
                Tensor::from_vec(out.into_iter().map(|x| (x / denom) as f32).collect(), [c])
            }
            Axis::Cols => {
                let mut out = Vec::with_capacity(r);
                for i in 0..r {
                    let m = mean.as_slice()[i] as f64;
                    let ss: f64 = self.row(i).iter().map(|&v| (v as f64 - m).powi(2)).sum();
                    out.push((ss / c.max(1) as f64) as f32);
                }
                Tensor::from_vec(out, [r])
            }
        }
    }

    /// Per-row argmin of a rank-2 tensor (first on ties).
    ///
    /// The NCM classifier's decision rule: each row holds the distances of
    /// one sample to every class prototype.
    pub fn argmin_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "argmin_rows" });
        }
        if self.cols() == 0 {
            return Err(TensorError::Empty { op: "argmin_rows" });
        }
        let mut out = Vec::with_capacity(self.rows());
        for i in 0..self.rows() {
            let row = self.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate().skip(1) {
                if v < row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() as f32
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tensor {
        Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn whole_tensor_reductions() {
        let x = t();
        assert_eq!(x.sum(), 21.0);
        assert_eq!(x.mean(), 3.5);
        assert!((x.variance() - 35.0 / 12.0).abs() < 1e-5);
        assert_eq!(x.max().unwrap(), 6.0);
        assert_eq!(x.min().unwrap(), 1.0);
    }

    #[test]
    fn empty_reductions() {
        let e = Tensor::zeros([0]);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert!(e.max().is_err());
        assert!(e.argmax().is_err());
    }

    #[test]
    fn axis_sums() {
        let x = t();
        assert_eq!(x.sum_axis(Axis::Rows).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(x.sum_axis(Axis::Cols).unwrap().as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn axis_means_and_vars() {
        let x = t();
        assert_eq!(x.mean_axis(Axis::Rows).unwrap().as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(x.mean_axis(Axis::Cols).unwrap().as_slice(), &[2.0, 5.0]);
        let vr = x.var_axis(Axis::Rows).unwrap();
        assert_eq!(vr.as_slice(), &[2.25, 2.25, 2.25]);
        let vc = x.var_axis(Axis::Cols).unwrap();
        for &v in vc.as_slice() {
            assert!((v - 2.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn arg_extrema() {
        let v = Tensor::vector(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        assert_eq!(v.argmax().unwrap(), 4);
        assert_eq!(v.argmin().unwrap(), 1);
        // ties resolve to the first index
        let tie = Tensor::vector(&[2.0, 2.0]);
        assert_eq!(tie.argmax().unwrap(), 0);
    }

    #[test]
    fn argmin_rows_per_sample() {
        let d = Tensor::from_rows(&[vec![3.0, 1.0, 2.0], vec![0.5, 9.0, 9.0]]).unwrap();
        assert_eq!(d.argmin_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros([2, 0]).argmin_rows().is_err());
    }

    #[test]
    fn norms() {
        let v = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(v.sq_norm(), 25.0);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn f64_accumulation_stability() {
        // 1M small values: naive f32 accumulation drifts visibly.
        let x = Tensor::full([1_000_000], 1e-4);
        assert!((x.sum() - 100.0).abs() < 1e-2);
    }
}
