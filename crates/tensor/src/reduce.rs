//! Reductions: sums, means, variances, extrema, argmax — whole-tensor and
//! per-axis (rank-2) variants.
//!
//! Per-axis reductions are band-parallelised over their *output* (rows for
//! [`Axis::Cols`], columns for [`Axis::Rows`]) so each output element keeps
//! its exact serial accumulation chain at any thread count. Whole-tensor
//! scalar reductions ([`Tensor::sum`], [`Tensor::mean`],
//! [`Tensor::variance`], [`Tensor::sq_norm`]) deliberately stay serial:
//! they are a single accumulation chain, and any repartition would reorder
//! floating-point additions and break the bitwise-determinism contract of
//! `docs/THREADING.md`.

use crate::error::TensorError;
use crate::parallel;
use crate::tensor::Tensor;
use crate::Result;

/// Axis selector for rank-2 reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Reduce over rows: output has one entry per column.
    Rows,
    /// Reduce over columns: output has one entry per row.
    Cols,
}

impl Tensor {
    /// Sum of all elements.
    ///
    /// Always computed as a single serial `f64` accumulation chain — never
    /// parallelised — so the result is independent of the thread
    /// configuration (see module docs).
    ///
    /// ```
    /// use pilote_tensor::Tensor;
    /// assert_eq!(Tensor::vector(&[1.0, 2.0, 3.0]).sum(), 6.0);
    /// ```
    pub fn sum(&self) -> f32 {
        // f64 accumulator: the training loop sums thousands of squared
        // distances; f32 accumulation loses precision noticeably there.
        self.as_slice().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        self.sum() / self.len() as f32
    }

    /// Population variance of all elements (0 for an empty tensor).
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.mean() as f64;
        let ss: f64 = self.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum();
        (ss / self.len() as f64) as f32
    }

    /// Maximum element.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.max(x))))
            .ok_or(TensorError::Empty { op: "max" })
    }

    /// Minimum element.
    pub fn min(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.min(x))))
            .ok_or(TensorError::Empty { op: "min" })
    }

    /// Index of the maximum element of a rank-1 tensor (first on ties).
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0usize;
        let mut best_v = self.as_slice()[0];
        for (i, &v) in self.as_slice().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        Ok(best)
    }

    /// Index of the minimum element of a rank-1 tensor (first on ties).
    pub fn argmin(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "argmin" });
        }
        let mut best = 0usize;
        let mut best_v = self.as_slice()[0];
        for (i, &v) in self.as_slice().iter().enumerate().skip(1) {
            if v < best_v {
                best = i;
                best_v = v;
            }
        }
        Ok(best)
    }

    /// Per-axis sum of a rank-2 tensor.
    pub fn sum_axis(&self, axis: Axis) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "sum_axis" });
        }
        let (r, c) = (self.rows(), self.cols());
        let data = self.as_slice();
        let threads = parallel::effective_threads(r * c);
        match axis {
            Axis::Rows => {
                // One output per column; bands partition the columns and
                // each column keeps its serial row-ascending f64 chain.
                let mut out = vec![0.0f32; c];
                parallel::for_each_band(&mut out, 1, threads, |j0, band| {
                    let w = band.len();
                    let mut acc = vec![0.0f64; w];
                    for i in 0..r {
                        let row = &data[i * c + j0..i * c + j0 + w];
                        for (o, &v) in acc.iter_mut().zip(row) {
                            *o += v as f64;
                        }
                    }
                    for (o, a) in band.iter_mut().zip(acc) {
                        *o = a as f32;
                    }
                });
                Tensor::from_vec(out, [c])
            }
            Axis::Cols => {
                let mut out = vec![0.0f32; r];
                parallel::for_each_band(&mut out, 1, threads, |i0, band| {
                    for (off, o) in band.iter_mut().enumerate() {
                        let i = i0 + off;
                        *o = data[i * c..(i + 1) * c].iter().map(|&v| v as f64).sum::<f64>()
                            as f32;
                    }
                });
                Tensor::from_vec(out, [r])
            }
        }
    }

    /// Per-axis mean of a rank-2 tensor.
    pub fn mean_axis(&self, axis: Axis) -> Result<Tensor> {
        let (r, c) = (self.rows(), self.cols());
        let n = match axis {
            Axis::Rows => r,
            Axis::Cols => c,
        };
        let s = self.sum_axis(axis)?;
        Ok(if n == 0 { s } else { s.scale(1.0 / n as f32) })
    }

    /// Per-axis population variance of a rank-2 tensor.
    pub fn var_axis(&self, axis: Axis) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "var_axis" });
        }
        let (r, c) = (self.rows(), self.cols());
        let mean = self.mean_axis(axis)?;
        let means = mean.as_slice();
        let data = self.as_slice();
        let threads = parallel::effective_threads(r * c);
        match axis {
            Axis::Rows => {
                let denom = r.max(1) as f64;
                let mut out = vec![0.0f32; c];
                parallel::for_each_band(&mut out, 1, threads, |j0, band| {
                    let w = band.len();
                    let mut acc = vec![0.0f64; w];
                    for i in 0..r {
                        let row = &data[i * c + j0..i * c + j0 + w];
                        for ((o, &v), &m) in acc.iter_mut().zip(row).zip(&means[j0..j0 + w]) {
                            let d = v as f64 - m as f64;
                            *o += d * d;
                        }
                    }
                    for (o, a) in band.iter_mut().zip(acc) {
                        *o = (a / denom) as f32;
                    }
                });
                Tensor::from_vec(out, [c])
            }
            Axis::Cols => {
                let mut out = vec![0.0f32; r];
                parallel::for_each_band(&mut out, 1, threads, |i0, band| {
                    for (off, o) in band.iter_mut().enumerate() {
                        let i = i0 + off;
                        let m = means[i] as f64;
                        let ss: f64 = data[i * c..(i + 1) * c]
                            .iter()
                            .map(|&v| (v as f64 - m).powi(2))
                            .sum();
                        *o = (ss / c.max(1) as f64) as f32;
                    }
                });
                Tensor::from_vec(out, [r])
            }
        }
    }

    /// Per-row argmin of a rank-2 tensor (first on ties).
    ///
    /// The NCM classifier's decision rule: each row holds the distances of
    /// one sample to every class prototype.
    pub fn argmin_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { got: self.rank(), expected: 2, op: "argmin_rows" });
        }
        if self.cols() == 0 {
            return Err(TensorError::Empty { op: "argmin_rows" });
        }
        let (r, c) = (self.rows(), self.cols());
        let data = self.as_slice();
        let threads = parallel::effective_threads(r * c);
        let mut out = vec![0usize; r];
        parallel::for_each_band(&mut out, 1, threads, |i0, band| {
            for (off, o) in band.iter_mut().enumerate() {
                let row = &data[(i0 + off) * c..(i0 + off + 1) * c];
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate().skip(1) {
                    if v < row[best] {
                        best = j;
                    }
                }
                *o = best;
            }
        });
        Ok(out)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() as f32
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tensor {
        Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn whole_tensor_reductions() {
        let x = t();
        assert_eq!(x.sum(), 21.0);
        assert_eq!(x.mean(), 3.5);
        assert!((x.variance() - 35.0 / 12.0).abs() < 1e-5);
        assert_eq!(x.max().unwrap(), 6.0);
        assert_eq!(x.min().unwrap(), 1.0);
    }

    #[test]
    fn empty_reductions() {
        let e = Tensor::zeros([0]);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert!(e.max().is_err());
        assert!(e.argmax().is_err());
    }

    #[test]
    fn axis_sums() {
        let x = t();
        assert_eq!(x.sum_axis(Axis::Rows).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(x.sum_axis(Axis::Cols).unwrap().as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn axis_means_and_vars() {
        let x = t();
        assert_eq!(x.mean_axis(Axis::Rows).unwrap().as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(x.mean_axis(Axis::Cols).unwrap().as_slice(), &[2.0, 5.0]);
        let vr = x.var_axis(Axis::Rows).unwrap();
        assert_eq!(vr.as_slice(), &[2.25, 2.25, 2.25]);
        let vc = x.var_axis(Axis::Cols).unwrap();
        for &v in vc.as_slice() {
            assert!((v - 2.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn arg_extrema() {
        let v = Tensor::vector(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        assert_eq!(v.argmax().unwrap(), 4);
        assert_eq!(v.argmin().unwrap(), 1);
        // ties resolve to the first index
        let tie = Tensor::vector(&[2.0, 2.0]);
        assert_eq!(tie.argmax().unwrap(), 0);
    }

    #[test]
    fn argmin_rows_per_sample() {
        let d = Tensor::from_rows(&[vec![3.0, 1.0, 2.0], vec![0.5, 9.0, 9.0]]).unwrap();
        assert_eq!(d.argmin_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros([2, 0]).argmin_rows().is_err());
    }

    #[test]
    fn parallel_bitwise_matches_serial() {
        use crate::parallel::{self, ThreadConfig};
        use crate::rng::Rng64;
        let _guard = parallel::TEST_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = Rng64::new(12);
        let x = Tensor::from_vec(
            (0..57 * 23).map(|_| rng.normal_f32(0.0, 3.0)).collect(),
            [57, 23],
        )
        .unwrap();

        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let serial = (
            x.sum_axis(Axis::Rows).unwrap(),
            x.sum_axis(Axis::Cols).unwrap(),
            x.var_axis(Axis::Rows).unwrap(),
            x.var_axis(Axis::Cols).unwrap(),
            x.argmin_rows().unwrap(),
            x.sum(),
        );
        for threads in [2usize, 3, 4] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            assert_eq!(x.sum_axis(Axis::Rows).unwrap(), serial.0);
            assert_eq!(x.sum_axis(Axis::Cols).unwrap(), serial.1);
            assert_eq!(x.var_axis(Axis::Rows).unwrap(), serial.2);
            assert_eq!(x.var_axis(Axis::Cols).unwrap(), serial.3);
            assert_eq!(x.argmin_rows().unwrap(), serial.4);
            // Whole-tensor sum is serial by contract, hence trivially equal.
            assert_eq!(x.sum().to_bits(), serial.5.to_bits());
        }
        parallel::configure(saved);
    }

    #[test]
    fn norms() {
        let v = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(v.sq_norm(), 25.0);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn f64_accumulation_stability() {
        // 1M small values: naive f32 accumulation drifts visibly.
        let x = Tensor::full([1_000_000], 1e-4);
        assert!((x.sum() - 100.0).abs() < 1e-2);
    }
}
