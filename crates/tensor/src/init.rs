//! Weight-initialisation schemes and random tensor constructors.

use crate::rng::Rng64;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Tensor with i.i.d. standard-normal entries scaled to `std` around
    /// `mean`.
    pub fn randn(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Rng64) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.normal_f32(mean, std)).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng64) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.uniform_range(lo, hi)).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Glorot/Xavier uniform initialisation for a `[fan_in, fan_out]`
    /// weight matrix: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform([fan_in, fan_out], -bound, bound, rng)
    }

    /// He/Kaiming normal initialisation for ReLU networks:
    /// `N(0, √(2/fan_in))`.
    pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::randn([fan_in, fan_out], 0.0, std, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_moments() {
        let mut rng = Rng64::new(1);
        let t = Tensor::randn([100_000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.05);
        assert!((t.variance() - 4.0).abs() < 0.15);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng64::new(2);
        let t = Tensor::rand_uniform([10_000], -2.0, 3.0, &mut rng);
        assert!(t.min().unwrap() >= -2.0);
        assert!(t.max().unwrap() < 3.0);
        assert!((t.mean() - 0.5).abs() < 0.1);
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = Rng64::new(3);
        let (fi, fo) = (30, 20);
        let t = Tensor::xavier_uniform(fi, fo, &mut rng);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(t.max().unwrap() <= bound);
        assert!(t.min().unwrap() >= -bound);
        assert_eq!(t.shape().dims(), &[fi, fo]);
    }

    #[test]
    fn kaiming_std_matches_formula() {
        let mut rng = Rng64::new(4);
        let t = Tensor::kaiming_normal(200, 500, &mut rng);
        let expected_var = 2.0 / 200.0;
        assert!((t.variance() - expected_var).abs() < expected_var * 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Tensor::randn([16], 0.0, 1.0, &mut Rng64::new(9));
        let b = Tensor::randn([16], 0.0, 1.0, &mut Rng64::new(9));
        assert_eq!(a, b);
    }
}
