//! Sensor-window simulation.
//!
//! Each generated window simulates one second of smartphone sensor data for
//! one activity performed by one randomly drawn "user". User-level
//! variation (cadence, amplitude, travel speed, phone orientation, sensor
//! bias) is the dominant source of intra-class spread, exactly as in a real
//! data-collection campaign with many volunteers.

use crate::activity::Activity;
use crate::sensors::{Scalar, Triad, CHANNELS, SAMPLE_RATE_HZ, WINDOW_LEN};
use pilote_tensor::{Rng64, Tensor};
use serde::{Deserialize, Serialize};

/// Standard gravity (m/s²).
pub const GRAVITY: f32 = 9.81;

/// Configuration of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulatorConfig {
    /// RNG seed; fully determines all generated data.
    pub seed: u64,
    /// Samples per window (paper: ~120).
    pub window_len: usize,
    /// Sampling rate in Hz (paper: ~120).
    pub sample_rate_hz: f32,
    /// Global multiplier on all sensor noise (1.0 = nominal).
    pub noise_scale: f32,
    /// Maximum phone-orientation deviation from the canonical pose, in
    /// radians. Larger values make classes harder to separate.
    pub orientation_jitter: f32,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            seed: 0,
            window_len: WINDOW_LEN,
            sample_rate_hz: SAMPLE_RATE_HZ,
            noise_scale: 1.0,
            orientation_jitter: 0.7,
        }
    }
}

/// A 3×3 rotation matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation([[f32; 3]; 3]);

impl Rotation {
    /// Identity rotation.
    pub fn identity() -> Self {
        Rotation([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Rotation of `angle` radians about the (normalised) `axis`
    /// (Rodrigues' formula).
    pub fn axis_angle(axis: [f32; 3], angle: f32) -> Self {
        let norm = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
        if norm < 1e-9 {
            return Rotation::identity();
        }
        let (x, y, z) = (axis[0] / norm, axis[1] / norm, axis[2] / norm);
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        Rotation([
            [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
            [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
            [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
        ])
    }

    /// Random rotation with angle uniform in `[0, max_angle]`.
    pub fn random(max_angle: f32, rng: &mut Rng64) -> Self {
        let axis = [
            rng.normal_f32(0.0, 1.0),
            rng.normal_f32(0.0, 1.0),
            rng.normal_f32(0.0, 1.0),
        ];
        Rotation::axis_angle(axis, rng.uniform_f32() * max_angle)
    }

    /// Composition `self ∘ other` (apply `other` first, then `self`).
    pub fn compose(&self, other: &Rotation) -> Rotation {
        let mut out = [[0.0f32; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.0[i][k] * other.0[k][j]).sum();
            }
        }
        Rotation(out)
    }

    /// Applies the rotation to a vector.
    #[inline]
    pub fn apply(&self, v: [f32; 3]) -> [f32; 3] {
        let m = &self.0;
        [
            m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
            m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
            m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
        ]
    }
}

/// How the phone is carried — each mode has a distinct orientation
/// regime, amplitude attenuation and noise floor, so every activity class
/// is a *union of well-separated modes* rather than one smooth cluster.
/// This is what makes a small exemplar set genuinely under-sample a class
/// (the paper's forgetting dynamics depend on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarryMode {
    /// Trouser pocket: strongly tilted, impacts amplified.
    Pocket,
    /// In hand: mild tilt, tremor noise.
    Hand,
    /// Backpack / bag: arbitrary orientation, damped motion.
    Backpack,
    /// Vehicle mount / armband: nearly canonical pose.
    Mount,
}

impl CarryMode {
    /// All modes.
    pub const ALL: [CarryMode; 4] =
        [CarryMode::Pocket, CarryMode::Hand, CarryMode::Backpack, CarryMode::Mount];
}

/// Concrete per-window "user" parameters drawn from an activity's
/// population model.
#[derive(Debug, Clone)]
struct UserDraw {
    gait_hz: f32,
    gait_amp: f32,
    harmonic2: f32,
    vib_hz: f32,
    vib_amp: f32,
    speed: f32,
    sway: f32,
    bump_rate: f32,
    bump_amp: f32,
    noise: f32,
    phase: f32,
    heading: f32,
    rotation: Rotation,
    acc_bias: [f32; 3],
    in_pocket: bool,
    light_level: f32,
    /// Whether GPS has a fix this window (urban canyons, pockets).
    gps_available: bool,
    /// Per-user global motion-amplitude scaling.
    amp_scale: f32,
    /// Hand-carry tremor noise σ (0 unless carried in hand).
    tremor: f32,
}

/// A raw (pre-feature-extraction) dataset of sensor windows.
#[derive(Debug, Clone)]
pub struct RawDataset {
    /// One `[window_len, 22]` tensor per record.
    pub windows: Vec<Tensor>,
    /// Canonical activity label of each record.
    pub labels: Vec<usize>,
}

impl RawDataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// The sensor-data simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimulatorConfig,
    rng: Rng64,
}

impl Simulator {
    /// New simulator with the given configuration.
    pub fn new(cfg: SimulatorConfig) -> Self {
        let rng = Rng64::new(cfg.seed);
        Simulator { cfg, rng }
    }

    /// New simulator with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Simulator::new(SimulatorConfig { seed, ..SimulatorConfig::default() })
    }

    /// The active configuration.
    pub fn config(&self) -> &SimulatorConfig {
        &self.cfg
    }

    fn draw_user(&mut self, activity: Activity) -> UserDraw {
        let m = activity.model();
        let r = &mut self.rng;
        let u = |r: &mut Rng64, (lo, hi): (f32, f32)| r.uniform_range(lo, hi.max(lo + 1e-9));

        // Carry mode: a discrete within-class regime.
        let carry = CarryMode::ALL[r.below(4)];
        let (carry_angle, carry_amp, carry_noise, tremor) = match carry {
            CarryMode::Pocket => (1.5, 1.25, 0.02, 0.0),
            CarryMode::Hand => (0.4, 0.8, 0.05, 0.18),
            CarryMode::Backpack => (3.0, 0.55, 0.04, 0.0),
            CarryMode::Mount => (0.15, 1.0, 0.0, 0.0),
        };
        let base_rotation = Rotation::random(carry_angle, r);
        let jitter = Rotation::random(self.cfg.orientation_jitter, r);

        // Terrain regime for vehicle activities: rough roads shake harder.
        let (bump_factor, vib_factor) = if m.vibration_hz.1 > 0.0 {
            if r.bernoulli(0.5) {
                (2.5, 1.4) // rough
            } else {
                (0.4, 0.8) // smooth
            }
        } else {
            (1.0, 1.0)
        };

        UserDraw {
            gait_hz: u(r, m.gait_hz),
            gait_amp: u(r, m.gait_amp),
            harmonic2: m.harmonic2,
            vib_hz: u(r, m.vibration_hz),
            vib_amp: u(r, m.vibration_amp) * vib_factor,
            speed: u(r, m.speed),
            sway: u(r, m.sway),
            bump_rate: m.bump_rate * bump_factor,
            bump_amp: m.bump_amp,
            noise: (m.noise + carry_noise) * self.cfg.noise_scale,
            phase: r.uniform_f32() * std::f32::consts::TAU,
            heading: r.uniform_f32() * std::f32::consts::TAU,
            rotation: Rotation::compose(&base_rotation, &jitter),
            acc_bias: [
                r.normal_f32(0.0, 0.05),
                r.normal_f32(0.0, 0.05),
                r.normal_f32(0.0, 0.05),
            ],
            in_pocket: carry == CarryMode::Pocket || carry == CarryMode::Backpack,
            light_level: match activity {
                Activity::Drive => r.uniform_range(1.0, 3.0),
                _ => r.uniform_range(2.0, 5.0),
            },
            gps_available: r.bernoulli(0.75),
            amp_scale: r.uniform_range(0.7, 1.3) * carry_amp,
            tremor,
        }
    }

    /// Generates one `[window_len, 22]` window of the given activity.
    pub fn window(&mut self, activity: Activity) -> Tensor {
        let user = self.draw_user(activity);
        let n = self.cfg.window_len;
        let dt = 1.0 / self.cfg.sample_rate_hz;
        let mut data = vec![0.0f32; n * CHANNELS];

        // Earth magnetic field in the local frame, rotated by heading.
        let (sh, ch) = user.heading.sin_cos();
        let mag_earth = [30.0 * ch, 30.0 * sh, -45.0];

        // Road-bump excitation: an exponentially decaying impulse train.
        let mut bump = 0.0f32;
        let bump_p = (user.bump_rate * dt) as f64;

        for t_idx in 0..n {
            let t = t_idx as f32 * dt;
            let tau = std::f32::consts::TAU;

            // -------- body-frame kinematics --------
            let gait = user.amp_scale
                * user.gait_amp
                * ((tau * user.gait_hz * t + user.phase).sin()
                    + user.harmonic2 * (2.0 * tau * user.gait_hz * t + 2.0 * user.phase).sin());
            let vib = user.amp_scale * user.vib_amp * (tau * user.vib_hz * t + user.phase).sin();
            if user.bump_rate > 0.0 && self.rng.bernoulli(bump_p) {
                bump += user.bump_amp * self.rng.normal_f32(0.0, 1.0);
            }
            bump *= 0.82; // ~10 ms decay constant at 120 Hz

            // Lateral/forward motion: gait couples into the horizontal
            // plane at half amplitude; vehicles get smooth speed noise.
            let vertical = gait + vib + bump;
            let forward = 0.5 * gait * (tau * user.gait_hz * t).cos()
                + 0.3 * vib
                + self.rng.normal_f32(0.0, user.noise);
            let lateral =
                0.35 * gait * (tau * user.gait_hz * t + 1.3).sin() + self.rng.normal_f32(0.0, user.noise);

            let lin_body = [lateral, forward, vertical];
            let grav_body = [0.0, 0.0, GRAVITY];
            let acc_body =
                [lin_body[0] + grav_body[0], lin_body[1] + grav_body[1], lin_body[2] + grav_body[2]];

            // Gyroscope: sway about all three axes at gait (or slow
            // vehicle) frequency.
            let sway_hz = if user.gait_hz > 0.0 { user.gait_hz } else { 0.4 };
            let gyro_body = [
                user.sway * (tau * sway_hz * t + user.phase).sin(),
                user.sway * 0.7 * (tau * sway_hz * t + user.phase + 0.9).sin(),
                user.sway * 0.4 * (tau * sway_hz * t + user.phase + 2.1).sin(),
            ];

            // -------- rotate into the (jittered) phone frame --------
            let noise = |rng: &mut Rng64, s: f32| rng.normal_f32(0.0, s);
            let rot = &user.rotation;
            let acc = rot.apply(acc_body);
            let lin = rot.apply(lin_body);
            let grav = rot.apply(grav_body);
            let gyr = rot.apply(gyro_body);
            let mag = rot.apply(mag_earth);

            let row = &mut data[t_idx * CHANNELS..(t_idx + 1) * CHANNELS];
            for (axis, &base) in Triad::Accelerometer.channels().iter().enumerate() {
                row[base] = acc[axis]
                    + user.acc_bias[axis]
                    + noise(&mut self.rng, user.noise + user.tremor);
            }
            for (axis, &base) in Triad::Gyroscope.channels().iter().enumerate() {
                row[base] = gyr[axis] + noise(&mut self.rng, 0.35 * user.noise);
            }
            let mag_distort = if activity == Activity::Drive { 5.0 } else { 0.0 };
            for (axis, &base) in Triad::Magnetometer.channels().iter().enumerate() {
                row[base] = mag[axis]
                    + mag_distort * (axis as f32 - 1.0)
                    + noise(&mut self.rng, 1.5 + 2.5 * user.noise);
            }
            for (axis, &base) in Triad::LinearAcceleration.channels().iter().enumerate() {
                row[base] = lin[axis] + noise(&mut self.rng, user.noise);
            }
            for (axis, &base) in Triad::Gravity.channels().iter().enumerate() {
                row[base] = grav[axis] + noise(&mut self.rng, 0.02);
            }

            // -------- scalar channels --------
            row[Scalar::Pressure.channel()] =
                0.02 * user.speed * (0.3 * t).sin() + noise(&mut self.rng, 0.05);
            row[Scalar::Light.channel()] = if user.in_pocket {
                noise(&mut self.rng, 0.05).abs()
            } else {
                user.light_level + noise(&mut self.rng, 0.2)
            };
            row[Scalar::Proximity.channel()] =
                if user.in_pocket { 1.0 } else { 0.0 } + noise(&mut self.rng, 0.02);
            row[Scalar::GpsSpeed.channel()] = if user.gps_available {
                (user.speed + noise(&mut self.rng, 0.8)).max(0.0)
            } else {
                // No fix: the platform reports zero speed plus jitter.
                noise(&mut self.rng, 0.1).abs()
            };
            row[Scalar::AudioLevel.channel()] = match activity {
                Activity::Drive => 0.45,
                Activity::EScooter => 0.38,
                Activity::Run => 0.3,
                Activity::Walk => 0.22,
                Activity::Still => 0.12,
            } + noise(&mut self.rng, 0.15);
            row[Scalar::Temperature.channel()] = noise(&mut self.rng, 0.3);
            row[Scalar::StepRate.channel()] = if user.gait_hz > 0.0 {
                user.gait_hz + noise(&mut self.rng, 0.45)
            } else if user.vib_amp > 0.0 {
                // Road vibration fools the pedometer into phantom steps.
                noise(&mut self.rng, 0.6).abs()
            } else {
                noise(&mut self.rng, 0.05).abs()
            };
        }

        Tensor::from_vec(data, [n, CHANNELS]).expect("length by construction")
    }

    /// Generates `n` windows of one activity.
    pub fn windows(&mut self, activity: Activity, n: usize) -> Vec<Tensor> {
        (0..n).map(|_| self.window(activity)).collect()
    }

    /// Generates a continuous multi-second session `[seconds·rate, 22]` of
    /// one activity (one user throughout) — input for the segmentation
    /// tests and the streaming example.
    pub fn session(&mut self, activity: Activity, seconds: usize) -> Tensor {
        // A session is a sequence of windows from a single user draw; we
        // approximate by fixing the seed-derived user via one long window.
        let saved_len = self.cfg.window_len;
        self.cfg.window_len = seconds * self.cfg.sample_rate_hz as usize;
        let out = self.window(activity);
        self.cfg.window_len = saved_len;
        out
    }

    /// Generates a labelled raw dataset with `count` windows per activity
    /// in `counts`.
    pub fn raw_dataset(&mut self, counts: &[(Activity, usize)]) -> RawDataset {
        let total: usize = counts.iter().map(|&(_, c)| c).sum();
        let mut windows = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        for &(activity, count) in counts {
            for _ in 0..count {
                windows.push(self.window(activity));
                labels.push(activity.label());
            }
        }
        RawDataset { windows, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::reduce::Axis;

    #[test]
    fn window_shape_and_finiteness() {
        let mut sim = Simulator::with_seed(1);
        for a in Activity::ALL {
            let w = sim.window(a);
            assert_eq!(w.shape().dims(), &[WINDOW_LEN, CHANNELS]);
            assert!(w.all_finite(), "{a}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = Simulator::with_seed(9).window(Activity::Walk);
        let w2 = Simulator::with_seed(9).window(Activity::Walk);
        assert_eq!(w1, w2);
    }

    #[test]
    fn still_has_lowest_accel_variance() {
        let mut sim = Simulator::with_seed(2);
        let var_of = |sim: &mut Simulator, a: Activity| {
            let w = sim.window(a);
            let v = w.var_axis(Axis::Rows).unwrap();
            // variance of the vertical accelerometer channel
            v.as_slice()[2]
        };
        let still: f32 =
            (0..10).map(|_| var_of(&mut sim, Activity::Still)).sum::<f32>() / 10.0;
        let run: f32 = (0..10).map(|_| var_of(&mut sim, Activity::Run)).sum::<f32>() / 10.0;
        assert!(still < run / 10.0, "still {still} vs run {run}");
    }

    #[test]
    fn gravity_magnitude_is_preserved_by_rotation() {
        let mut sim = Simulator::with_seed(3);
        let w = sim.window(Activity::Walk);
        // Mean gravity-vector magnitude should be ≈ 9.81 regardless of
        // phone orientation.
        let mut mags = 0.0f32;
        for t in 0..WINDOW_LEN {
            let [cx, cy, cz] = Triad::Gravity.channels();
            let g = [w.at(t, cx), w.at(t, cy), w.at(t, cz)];
            mags += (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
        }
        let mean = mags / WINDOW_LEN as f32;
        assert!((mean - GRAVITY).abs() < 0.2, "mean gravity magnitude {mean}");
    }

    #[test]
    fn gps_speed_separates_drive_from_still() {
        // GPS has per-window dropout, so compare means over many windows.
        let mut sim = Simulator::with_seed(4);
        let mean_speed = |sim: &mut Simulator, a: Activity| {
            let c = Scalar::GpsSpeed.channel();
            (0..20)
                .map(|_| {
                    let w = sim.window(a);
                    (0..WINDOW_LEN).map(|t| w.at(t, c)).sum::<f32>() / WINDOW_LEN as f32
                })
                .sum::<f32>()
                / 20.0
        };
        let drive = mean_speed(&mut sim, Activity::Drive);
        let still = mean_speed(&mut sim, Activity::Still);
        assert!(drive > 2.0, "drive speed {drive}");
        assert!(still < 1.0, "still speed {still}");
    }

    #[test]
    fn rotation_is_orthonormal() {
        let mut rng = Rng64::new(5);
        for _ in 0..20 {
            let r = Rotation::random(1.0, &mut rng);
            let e = [
                r.apply([1.0, 0.0, 0.0]),
                r.apply([0.0, 1.0, 0.0]),
                r.apply([0.0, 0.0, 1.0]),
            ];
            for i in 0..3 {
                let n: f32 = e[i].iter().map(|v| v * v).sum();
                assert!((n - 1.0).abs() < 1e-4);
                for j in i + 1..3 {
                    let d: f32 = e[i].iter().zip(&e[j]).map(|(a, b)| a * b).sum();
                    assert!(d.abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn zero_axis_rotation_is_identity() {
        let r = Rotation::axis_angle([0.0, 0.0, 0.0], 1.0);
        assert_eq!(r.apply([1.0, 2.0, 3.0]), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn session_has_requested_length() {
        let mut sim = Simulator::with_seed(6);
        let s = sim.session(Activity::Walk, 5);
        assert_eq!(s.shape().dims(), &[5 * 120, CHANNELS]);
        // config restored
        assert_eq!(sim.config().window_len, WINDOW_LEN);
    }

    #[test]
    fn raw_dataset_counts_and_labels() {
        let mut sim = Simulator::with_seed(7);
        let ds = sim.raw_dataset(&[(Activity::Run, 3), (Activity::Still, 2)]);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.labels, vec![2, 2, 2, 3, 3]);
    }

    #[test]
    fn step_rate_reflects_cadence_for_gait_activities() {
        let mut sim = Simulator::with_seed(8);
        let c = Scalar::StepRate.channel();
        let mean_rate = |w: &Tensor| (0..WINDOW_LEN).map(|t| w.at(t, c)).sum::<f32>() / 120.0;
        let run = mean_rate(&sim.window(Activity::Run));
        let still = mean_rate(&sim.window(Activity::Still));
        assert!(run > 1.5, "run step rate {run}");
        assert!(still < 0.5, "still step rate {still}");
    }
}
