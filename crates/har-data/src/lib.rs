//! # pilote-har-data
//!
//! Synthetic human-activity sensor data in the style of the MAGNETO
//! platform's data-collection campaigns, plus the paper's preprocessing and
//! feature-extraction pipeline.
//!
//! The PILOTE paper (EDBT 2023) evaluates on a proprietary ~100 GB campaign
//! of smartphone sensor recordings (~200 k one-second windows, 22 sensors at
//! ~120 Hz, five activities: *Drive*, *E-scooter*, *Run*, *Still*, *Walk*).
//! That corpus was never released, so this crate implements the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! * [`activity`] — the five activity classes with physically motivated
//!   signal models (gait harmonics for Walk/Run, engine/motor vibration for
//!   Drive/E-scooter, near-silence for Still). Walk and Run deliberately
//!   overlap in cadence and amplitude across the simulated user population,
//!   reproducing the Run↔Walk confusability that drives the paper's
//!   catastrophic-forgetting story (Fig. 4).
//! * [`sensors`] — the 22-channel layout: five 3-axis sensors
//!   (accelerometer, gyroscope, magnetometer, linear acceleration, gravity)
//!   plus seven scalar channels.
//! * [`simulate`] — per-user variation (cadence, amplitude, phone
//!   orientation, sensor noise/bias) and window/session generation.
//! * [`preprocess`] — linear-time denoising (moving average), z-score
//!   normalisation with train-fitted statistics, and segmentation of long
//!   sessions into one-second windows (§5, "preprocessing steps … with
//!   linear time operations").
//! * [`features`] — the 80 statistical features (§6.1.1): per-channel
//!   mean/variance, per-triad magnitude/jerk/energy statistics, and six
//!   window-global summaries.
//! * [`dataset`] — feature datasets with stratified splits, class
//!   filtering and subsampling for the incremental-learning scenarios.
//!
//! Fallible preprocessing paths report typed [`preprocess::PreprocessError`]s
//! instead of panicking — this crate runs against live edge sensor streams,
//! where a corrupted window must be quarantined, not crash the device
//! (`docs/RESILIENCE.md`).

// Library code must not panic on recoverable conditions (tier-0 of the
// resilience contract); tests may unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod activity;
pub mod dataset;
pub mod features;
pub mod preprocess;
pub mod sensors;
pub mod simulate;
pub mod stream;

pub use activity::Activity;
pub use dataset::Dataset;
pub use features::FEATURE_DIM;
pub use preprocess::PreprocessError;
pub use simulate::{Simulator, SimulatorConfig};
