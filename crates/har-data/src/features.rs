//! The 80 statistical features of §6.1.1.
//!
//! The paper: "We extract 80 statistical features such as the average, the
//! variance for each feature, the average jerk, and the variance of the
//! jerk for each three-dimensional feature sensor." The concrete layout
//! implemented here (and documented in DESIGN.md §5):
//!
//! | slot      | content                                                     |
//! |-----------|-------------------------------------------------------------|
//! | 0..44     | per-channel mean and variance (22 channels × 2)             |
//! | 44..74    | per-triad (5 triads × 6): magnitude mean, magnitude        |
//! |           | variance, jerk mean, jerk variance, energy, zero-crossing  |
//! |           | rate of the mean-removed magnitude                          |
//! | 74..80    | window-global: total energy, mean |derivative|, min, max,   |
//! |           | range, std of per-channel energies                          |
//!
//! Extraction is a single pass over the window per statistic — linear time,
//! matching the paper's edge-latency argument.

use crate::sensors::{Triad, CHANNELS};
use crate::simulate::RawDataset;
use pilote_tensor::{parallel, Tensor, TensorError};

/// Dimensionality of the feature vector (the embedding network's input).
pub const FEATURE_DIM: usize = 80;

/// Offset of the per-channel block.
const CHANNEL_BLOCK: usize = 0;
/// Offset of the per-triad block.
const TRIAD_BLOCK: usize = 44;
/// Offset of the global block.
const GLOBAL_BLOCK: usize = 74;

/// Extracts the 80-dimensional feature vector from a `[time, 22]` window.
pub fn extract(window: &Tensor) -> Result<Tensor, TensorError> {
    if window.rank() != 2 || window.cols() != CHANNELS {
        return Err(TensorError::ShapeMismatch {
            left: window.shape().dims().to_vec(),
            right: vec![CHANNELS],
            op: "features::extract",
        });
    }
    let n = window.rows();
    if n < 2 {
        return Err(TensorError::Empty { op: "features::extract (need ≥ 2 samples)" });
    }
    let nf = n as f64;
    let mut out = vec![0.0f32; FEATURE_DIM];

    // ---- per-channel mean/variance -------------------------------------
    let mut ch_mean = [0.0f64; CHANNELS];
    let mut ch_var = [0.0f64; CHANNELS];
    for t in 0..n {
        for (ch, m) in ch_mean.iter_mut().enumerate() {
            *m += window.at(t, ch) as f64;
        }
    }
    for m in &mut ch_mean {
        *m /= nf;
    }
    for t in 0..n {
        for (ch, v) in ch_var.iter_mut().enumerate() {
            let d = window.at(t, ch) as f64 - ch_mean[ch];
            *v += d * d;
        }
    }
    for v in &mut ch_var {
        *v /= nf;
    }
    for ch in 0..CHANNELS {
        out[CHANNEL_BLOCK + 2 * ch] = ch_mean[ch] as f32;
        out[CHANNEL_BLOCK + 2 * ch + 1] = ch_var[ch] as f32;
    }

    // ---- per-triad statistics -------------------------------------------
    for (ti, triad) in Triad::ALL.iter().enumerate() {
        let [cx, cy, cz] = triad.channels();
        let mut mags = Vec::with_capacity(n);
        for t in 0..n {
            let (x, y, z) = (window.at(t, cx), window.at(t, cy), window.at(t, cz));
            mags.push((x * x + y * y + z * z).sqrt());
        }
        let mag_mean = mags.iter().map(|&v| v as f64).sum::<f64>() / nf;
        let mag_var =
            mags.iter().map(|&v| (v as f64 - mag_mean).powi(2)).sum::<f64>() / nf;

        // Jerk: per-sample derivative magnitude of the 3-D signal.
        let mut jerks = Vec::with_capacity(n - 1);
        for t in 1..n {
            let dx = window.at(t, cx) - window.at(t - 1, cx);
            let dy = window.at(t, cy) - window.at(t - 1, cy);
            let dz = window.at(t, cz) - window.at(t - 1, cz);
            jerks.push((dx * dx + dy * dy + dz * dz).sqrt());
        }
        let jn = jerks.len() as f64;
        let jerk_mean = jerks.iter().map(|&v| v as f64).sum::<f64>() / jn;
        let jerk_var =
            jerks.iter().map(|&v| (v as f64 - jerk_mean).powi(2)).sum::<f64>() / jn;

        // Mean squared magnitude (signal energy).
        let energy = mags.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / nf;

        // Zero-crossing rate of the mean-removed magnitude — a cheap
        // dominant-frequency proxy (≈ 2·f/rate for a sinusoid).
        let mut crossings = 0usize;
        let mut prev = mags[0] as f64 - mag_mean;
        for &m in &mags[1..] {
            let cur = m as f64 - mag_mean;
            if prev.signum() != cur.signum() && cur != 0.0 {
                crossings += 1;
            }
            prev = cur;
        }
        let zcr = crossings as f64 / (n - 1) as f64;

        let base = TRIAD_BLOCK + 6 * ti;
        out[base] = mag_mean as f32;
        out[base + 1] = mag_var as f32;
        out[base + 2] = jerk_mean as f32;
        out[base + 3] = jerk_var as f32;
        out[base + 4] = energy as f32;
        out[base + 5] = zcr as f32;
    }

    // ---- window-global statistics ----------------------------------------
    let mut total_energy = 0.0f64;
    let mut mean_abs_deriv = 0.0f64;
    let mut gmin = f64::INFINITY;
    let mut gmax = f64::NEG_INFINITY;
    let mut ch_energy = [0.0f64; CHANNELS];
    for t in 0..n {
        #[allow(clippy::needless_range_loop)] // `ch` also indexes the window
        for ch in 0..CHANNELS {
            let v = window.at(t, ch) as f64;
            total_energy += v * v;
            ch_energy[ch] += v * v;
            gmin = gmin.min(v);
            gmax = gmax.max(v);
            if t > 0 {
                mean_abs_deriv += (v - window.at(t - 1, ch) as f64).abs();
            }
        }
    }
    total_energy /= nf * CHANNELS as f64;
    mean_abs_deriv /= (n - 1) as f64 * CHANNELS as f64;
    for e in &mut ch_energy {
        *e /= nf;
    }
    let e_mean = ch_energy.iter().sum::<f64>() / CHANNELS as f64;
    let e_std = (ch_energy.iter().map(|&e| (e - e_mean).powi(2)).sum::<f64>()
        / CHANNELS as f64)
        .sqrt();

    out[GLOBAL_BLOCK] = total_energy as f32;
    out[GLOBAL_BLOCK + 1] = mean_abs_deriv as f32;
    out[GLOBAL_BLOCK + 2] = gmin as f32;
    out[GLOBAL_BLOCK + 3] = gmax as f32;
    out[GLOBAL_BLOCK + 4] = (gmax - gmin) as f32;
    out[GLOBAL_BLOCK + 5] = e_std as f32;

    Tensor::from_vec(out, [FEATURE_DIM])
}

/// Extracts features from a slice of `[time, 22]` windows in parallel,
/// producing an `[n, 80]` feature matrix.
///
/// This is the batched feature front-end of the serving path: both offline
/// dataset preparation ([`extract_batch`]) and the streaming assembler's
/// block path (`WindowAssembler::push_block`) funnel their windows through
/// it, so feature extraction is batch-shaped end to end before the
/// GEMM-shaped embedding/classification stages take over.
///
/// Windows are processed in contiguous bands via the `pilote-tensor`
/// parallel layer (`docs/THREADING.md`); each window's feature vector is
/// computed by exactly one thread with the serial [`extract`] kernel, so
/// the matrix is bitwise-identical at any thread count. The first error
/// encountered (in window order) is returned.
pub fn extract_windows(windows: &[Tensor]) -> Result<Tensor, TensorError> {
    let n = windows.len();
    let work: usize = windows.iter().map(Tensor::len).sum();
    let threads = parallel::effective_threads(work);
    let bands = parallel::map_bands(n, threads, |range| {
        let mut data = Vec::with_capacity(range.len() * FEATURE_DIM);
        for w in &windows[range] {
            data.extend_from_slice(extract(w)?.as_slice());
        }
        Ok::<Vec<f32>, TensorError>(data)
    });
    let mut data = Vec::with_capacity(n * FEATURE_DIM);
    for band in bands {
        data.extend_from_slice(&band?);
    }
    Tensor::from_vec(data, [n, FEATURE_DIM])
}

/// Extracts features from every window of a raw dataset in parallel,
/// producing an `[n, 80]` feature matrix. See [`extract_windows`].
pub fn extract_batch(raw: &RawDataset) -> Result<Tensor, TensorError> {
    extract_windows(&raw.windows)
}

/// Human-readable name of feature `index` (for reports and debugging).
pub fn feature_name(index: usize) -> String {
    assert!(index < FEATURE_DIM, "feature index {index} out of range");
    if index < TRIAD_BLOCK {
        let ch = index / 2;
        let stat = if index.is_multiple_of(2) { "mean" } else { "var" };
        format!("{}_{stat}", crate::sensors::channel_name(ch))
    } else if index < GLOBAL_BLOCK {
        let ti = (index - TRIAD_BLOCK) / 6;
        let stat = ["mag_mean", "mag_var", "jerk_mean", "jerk_var", "energy", "zcr"]
            [(index - TRIAD_BLOCK) % 6];
        format!("{}_{stat}", Triad::ALL[ti].name())
    } else {
        ["total_energy", "mean_abs_deriv", "global_min", "global_max", "global_range", "energy_std"]
            [index - GLOBAL_BLOCK]
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::simulate::Simulator;
    use pilote_tensor::Rng64;

    #[test]
    fn feature_vector_has_contract_dimension() {
        let mut sim = Simulator::with_seed(1);
        let f = extract(&sim.window(Activity::Walk)).unwrap();
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.all_finite());
    }

    #[test]
    fn rejects_wrong_channel_count() {
        assert!(extract(&Tensor::zeros([120, 10])).is_err());
        assert!(extract(&Tensor::zeros([1, CHANNELS])).is_err());
    }

    #[test]
    fn constant_window_features() {
        let w = Tensor::full([120, CHANNELS], 2.0);
        let f = extract(&w).unwrap();
        // channel 0 mean = 2, var = 0
        assert!((f.as_slice()[0] - 2.0).abs() < 1e-5);
        assert!(f.as_slice()[1].abs() < 1e-7);
        // jerk of a constant signal is zero
        assert!(f.as_slice()[TRIAD_BLOCK + 2].abs() < 1e-7);
        // min = max = 2 → range 0
        assert!((f.as_slice()[GLOBAL_BLOCK + 2] - 2.0).abs() < 1e-6);
        assert!(f.as_slice()[GLOBAL_BLOCK + 4].abs() < 1e-6);
    }

    #[test]
    fn zcr_tracks_frequency() {
        // Build a window whose accelerometer x is a pure sinusoid.
        let mut data = vec![0.0f32; 120 * CHANNELS];
        for t in 0..120 {
            data[t * CHANNELS] = (std::f32::consts::TAU * 5.0 * t as f32 / 120.0).sin();
        }
        let w = Tensor::from_vec(data, [120, CHANNELS]).unwrap();
        let f = extract(&w).unwrap();
        // Magnitude of the accelerometer triad = |sin|; mean-removed |sin|
        // crosses zero at 4× the base frequency: ≈ 20 crossings / 119.
        let zcr = f.as_slice()[TRIAD_BLOCK + 5];
        assert!(zcr > 0.1 && zcr < 0.25, "zcr {zcr}");
    }

    #[test]
    fn run_has_higher_jerk_than_still() {
        let mut sim = Simulator::with_seed(2);
        let acc_jerk = TRIAD_BLOCK + 2; // accelerometer jerk mean
        let mean_of = |sim: &mut Simulator, a: Activity| {
            (0..10)
                .map(|_| extract(&sim.window(a)).unwrap().as_slice()[acc_jerk])
                .sum::<f32>()
                / 10.0
        };
        let run = mean_of(&mut sim, Activity::Run);
        let still = mean_of(&mut sim, Activity::Still);
        assert!(run > 3.0 * still, "run {run} vs still {still}");
    }

    #[test]
    fn batch_extraction_matches_single() {
        let mut sim = Simulator::with_seed(3);
        let raw = sim.raw_dataset(&[(Activity::Walk, 4), (Activity::Drive, 3)]);
        let batch = extract_batch(&raw).unwrap();
        assert_eq!(batch.shape().dims(), &[7, FEATURE_DIM]);
        for (i, w) in raw.windows.iter().enumerate() {
            let single = extract(w).unwrap();
            let row = Tensor::vector(batch.row(i));
            assert!(row.max_abs_diff(&single).unwrap() < 1e-7, "row {i}");
        }
    }

    #[test]
    fn feature_names_are_unique_and_total() {
        let names: Vec<String> = (0..FEATURE_DIM).map(feature_name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), FEATURE_DIM);
        assert_eq!(names[0], "accelerometer_x_mean");
        assert_eq!(names[44], "accelerometer_mag_mean");
        assert_eq!(names[79], "energy_std");
    }

    #[test]
    fn features_finite_for_extreme_inputs() {
        let mut rng = Rng64::new(4);
        let w = Tensor::randn([120, CHANNELS], 0.0, 1e4, &mut rng);
        let f = extract(&w).unwrap();
        assert!(f.all_finite());
    }
}
