//! Feature datasets and the splitting utilities the incremental-learning
//! experiments need.

use crate::activity::Activity;
use crate::features::{extract_batch, FEATURE_DIM};
use crate::preprocess::Normalizer;
use crate::simulate::{RawDataset, Simulator};
use pilote_tensor::{Rng64, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A labelled feature dataset: an `[n, 80]` feature matrix and one
/// canonical activity label per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, one row per record.
    pub features: Tensor,
    /// Canonical activity label of each row (see [`Activity::label`]).
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset, validating that rows and labels agree.
    pub fn new(features: Tensor, labels: Vec<usize>) -> Result<Self, TensorError> {
        if features.rank() != 2 {
            return Err(TensorError::RankMismatch { got: features.rank(), expected: 2, op: "Dataset::new" });
        }
        if features.rows() != labels.len() {
            return Err(TensorError::LengthMismatch { len: labels.len(), expected: features.rows() });
        }
        Ok(Dataset { features, labels })
    }

    /// Empty dataset with the standard feature width.
    pub fn empty() -> Self {
        Dataset { features: Tensor::zeros([0, FEATURE_DIM]), labels: Vec::new() }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Distinct labels present, sorted ascending.
    pub fn classes(&self) -> Vec<usize> {
        let mut c = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Row indices belonging to `label`.
    pub fn class_indices(&self, label: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == label).then_some(i))
            .collect()
    }

    /// Per-class record counts as `(label, count)` pairs, sorted by label.
    pub fn class_counts(&self) -> Vec<(usize, usize)> {
        self.classes()
            .into_iter()
            .map(|c| (c, self.class_indices(c).len()))
            .collect()
    }

    /// Sub-dataset with the rows at `indices` (order preserved).
    pub fn select(&self, indices: &[usize]) -> Result<Dataset, TensorError> {
        let features = self.features.select_rows(indices)?;
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Ok(Dataset { features, labels })
    }

    /// Sub-dataset containing only the given classes.
    pub fn filter_classes(&self, keep: &[usize]) -> Result<Dataset, TensorError> {
        let indices: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| keep.contains(l).then_some(i))
            .collect();
        self.select(&indices)
    }

    /// Concatenates two datasets (feature widths must agree).
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, TensorError> {
        let features = Tensor::vstack(&[&self.features, &other.features])?;
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Ok(Dataset { features, labels })
    }

    /// Stratified split into `(rest, held_out)` where `held_out` receives
    /// `fraction` of each class's rows (rounded to nearest, at least one
    /// row stays on each side for classes with ≥ 2 rows).
    pub fn stratified_split(
        &self,
        fraction: f32,
        rng: &mut Rng64,
    ) -> Result<(Dataset, Dataset), TensorError> {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
        let mut rest_idx = Vec::new();
        let mut held_idx = Vec::new();
        for class in self.classes() {
            let mut idx = self.class_indices(class);
            rng.shuffle(&mut idx);
            let n = idx.len();
            let mut k = ((n as f32) * fraction).round() as usize;
            if n >= 2 {
                k = k.clamp(1, n - 1);
            } else {
                k = 0;
            }
            held_idx.extend_from_slice(&idx[..k]);
            rest_idx.extend_from_slice(&idx[k..]);
        }
        Ok((self.select(&rest_idx)?, self.select(&held_idx)?))
    }

    /// Uniform random subsample of `k` rows of class `label` (all of them
    /// if the class has fewer than `k`).
    pub fn sample_class(&self, label: usize, k: usize, rng: &mut Rng64) -> Result<Dataset, TensorError> {
        let idx = self.class_indices(label);
        let k = k.min(idx.len());
        let chosen: Vec<usize> = rng.sample_indices(idx.len(), k).into_iter().map(|i| idx[i]).collect();
        self.select(&chosen)
    }
}

/// End-to-end generation: simulate raw windows, extract features, and
/// z-normalise with statistics fitted on the generated data.
///
/// Returns the normalised dataset together with the fitted [`Normalizer`]
/// (which edge-streamed data must reuse).
pub fn generate_features(
    sim: &mut Simulator,
    counts: &[(Activity, usize)],
) -> Result<(Dataset, Normalizer), crate::preprocess::PreprocessError> {
    let raw: RawDataset = sim.raw_dataset(counts);
    let features = extract_batch(&raw)?;
    let (norm, features) = Normalizer::fit_transform(&features)?;
    Ok((Dataset::new(features, raw.labels)?, norm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Tensor::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![4.0, 0.0],
            vec![5.0, 0.0],
        ])
        .unwrap();
        Dataset::new(features, vec![0, 0, 0, 1, 1, 2]).unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        assert!(Dataset::new(Tensor::zeros([3, 2]), vec![0, 1]).is_err());
        assert!(Dataset::new(Tensor::zeros([2]), vec![0, 1]).is_err());
    }

    #[test]
    fn classes_and_counts() {
        let ds = toy();
        assert_eq!(ds.classes(), vec![0, 1, 2]);
        assert_eq!(ds.class_counts(), vec![(0, 3), (1, 2), (2, 1)]);
        assert_eq!(ds.class_indices(1), vec![3, 4]);
    }

    #[test]
    fn filter_classes_keeps_only_requested() {
        let ds = toy();
        let sub = ds.filter_classes(&[0, 2]).unwrap();
        assert_eq!(sub.len(), 4);
        assert!(sub.labels.iter().all(|&l| l == 0 || l == 2));
    }

    #[test]
    fn concat_appends() {
        let ds = toy();
        let both = ds.concat(&ds).unwrap();
        assert_eq!(both.len(), 12);
        assert_eq!(both.labels[6..], ds.labels[..]);
    }

    #[test]
    fn stratified_split_is_per_class() {
        let ds = toy();
        let mut rng = Rng64::new(1);
        let (rest, held) = ds.stratified_split(0.34, &mut rng).unwrap();
        assert_eq!(rest.len() + held.len(), ds.len());
        // class 0 (3 rows): 1 held; class 1 (2 rows): 1 held; class 2 (1 row): 0 held
        assert_eq!(held.class_indices(0).len(), 1);
        assert_eq!(held.class_indices(1).len(), 1);
        assert_eq!(held.class_indices(2).len(), 0);
    }

    #[test]
    fn stratified_split_disjoint_and_complete() {
        let mut rng = Rng64::new(2);
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let ds = Dataset::new(Tensor::from_vec(data, [100, 1]).unwrap(), labels).unwrap();
        let (rest, held) = ds.stratified_split(0.3, &mut rng).unwrap();
        let mut all: Vec<i64> = rest
            .features
            .as_slice()
            .iter()
            .chain(held.features.as_slice())
            .map(|&v| v as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert_eq!(held.len(), 32); // 30% of 25 per class = 7.5 → rounds to 8 each
    }

    #[test]
    fn sample_class_respects_k() {
        let ds = toy();
        let mut rng = Rng64::new(3);
        let s = ds.sample_class(0, 2, &mut rng).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.labels.iter().all(|&l| l == 0));
        // more than available → all available
        let s = ds.sample_class(1, 10, &mut rng).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn generate_features_end_to_end() {
        let mut sim = Simulator::with_seed(42);
        let (ds, norm) =
            generate_features(&mut sim, &[(Activity::Walk, 10), (Activity::Still, 10)]).unwrap();
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.features.cols(), FEATURE_DIM);
        assert_eq!(norm.dim(), FEATURE_DIM);
        assert_eq!(ds.classes(), vec![Activity::Still.label(), Activity::Walk.label()]);
        assert!(ds.features.all_finite());
    }

    #[test]
    fn empty_dataset_behaves() {
        let e = Dataset::empty();
        assert!(e.is_empty());
        assert!(e.classes().is_empty());
        let (a, b) = e.stratified_split(0.3, &mut Rng64::new(1)).unwrap();
        assert!(a.is_empty() && b.is_empty());
    }
}
