//! Streaming window assembly — the edge side of the MAGNETO pipeline.
//!
//! On a device, sensor samples arrive one at a time; the paper's
//! recognition path segments them into one-second windows, denoises,
//! normalises and extracts features "instantly, as the preprocessing
//! operation requires linear time". [`WindowAssembler`] implements that
//! online path with O(window) memory, and [`DriftMonitor`] watches the
//! incoming distribution for covariate shift against the statistics the
//! normaliser was fitted on — the trigger a deployment would use to decide
//! that re-calibration (an incremental update) is needed.

use crate::features::{extract, extract_windows, FEATURE_DIM};
use crate::preprocess::{moving_average, Normalizer, PreprocessError};
use crate::sensors::CHANNELS;
use pilote_tensor::{Tensor, TensorError, Welford};

/// Assembles a per-sample stream into fixed-length windows and emits
/// feature vectors.
///
/// The assembler is the pipeline's first resilience tier (see
/// `docs/RESILIENCE.md`): samples carrying NaN/Inf taint their window, and
/// a tainted window is **quarantined** — counted, dropped, and never
/// forwarded to feature extraction — so corrupted sensor data can never
/// reach the model's prototypes.
#[derive(Debug, Clone)]
pub struct WindowAssembler {
    window_len: usize,
    stride: usize,
    denoise_width: usize,
    normalizer: Option<Normalizer>,
    buffer: Vec<[f32; CHANNELS]>,
    /// Per-buffered-sample finiteness flags, kept in lock-step with
    /// `buffer` so a tainted sample poisons exactly the windows it is part
    /// of.
    valid: Vec<bool>,
    emitted: u64,
    quarantined: u64,
}

impl WindowAssembler {
    /// New assembler with `window_len` samples per window and `stride`
    /// samples between window starts.
    ///
    /// # Panics
    /// Panics if `window_len == 0`, `stride == 0`, or `denoise_width` is
    /// even.
    pub fn new(window_len: usize, stride: usize, denoise_width: usize) -> Self {
        assert!(window_len > 0 && stride > 0, "window_len and stride must be positive");
        assert!(denoise_width % 2 == 1, "denoise width must be odd");
        WindowAssembler {
            window_len,
            stride,
            denoise_width,
            normalizer: None,
            buffer: Vec::with_capacity(window_len),
            valid: Vec::with_capacity(window_len),
            emitted: 0,
            quarantined: 0,
        }
    }

    /// Attaches the normaliser fitted during cloud pre-training; its
    /// statistics are applied to every emitted feature vector.
    pub fn with_normalizer(mut self, normalizer: Normalizer) -> Self {
        assert_eq!(normalizer.dim(), FEATURE_DIM, "normaliser must cover the feature space");
        self.normalizer = Some(normalizer);
        self
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Windows dropped because they contained non-finite samples or
    /// produced non-finite features.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Samples currently buffered (waiting for a full window).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Feeds one 22-channel sample; returns the extracted (and, if a
    /// normaliser is attached, normalised) 80-feature vector whenever a
    /// window completes.
    ///
    /// A completed window containing any NaN/Inf sample — or whose
    /// extracted features come out non-finite — is quarantined: the
    /// stream slides past it, [`WindowAssembler::quarantined`] is
    /// incremented, and `Ok(None)` is returned.
    pub fn push(&mut self, sample: [f32; CHANNELS]) -> Result<Option<Tensor>, PreprocessError> {
        self.valid.push(sample.iter().all(|v| v.is_finite()));
        self.buffer.push(sample);
        if self.buffer.len() < self.window_len {
            return Ok(None);
        }
        let tainted = self.valid.iter().any(|&ok| !ok);
        if tainted {
            self.slide();
            self.quarantined += 1;
            pilote_obs::counter("stream.windows_quarantined").inc();
            return Ok(None);
        }
        // Materialise the window, denoise, extract.
        let mut flat = Vec::with_capacity(self.window_len * CHANNELS);
        for row in &self.buffer {
            flat.extend_from_slice(row);
        }
        let window = Tensor::from_vec(flat, [self.window_len, CHANNELS])?;
        let window = if self.denoise_width > 1 {
            moving_average(&window, self.denoise_width)?
        } else {
            window
        };
        let features = extract(&window)?;
        let features = match &self.normalizer {
            Some(norm) => {
                let as_row = features.reshape([1, FEATURE_DIM])?;
                let normed = norm.transform(&as_row)?;
                normed.reshape([FEATURE_DIM])?
            }
            None => features,
        };
        self.slide();
        // Finite inputs can still overflow f32 in variance/energy terms;
        // those features would poison prototype means downstream.
        if !features.all_finite() {
            self.quarantined += 1;
            pilote_obs::counter("stream.windows_quarantined").inc();
            return Ok(None);
        }
        self.emitted += 1;
        pilote_obs::counter("stream.windows_emitted").inc();
        Ok(Some(features))
    }

    /// Slides the buffer (and its validity flags) forward by one stride.
    fn slide(&mut self) {
        let n = self.stride.min(self.buffer.len());
        self.buffer.drain(..n);
        self.valid.drain(..n);
    }

    /// Feeds a `[n, 22]` block of samples, collecting every completed
    /// window's features.
    ///
    /// Unlike the per-sample [`WindowAssembler::push`] path, the block path
    /// is batched: window assembly, taint screening, and denoising run
    /// per window as the block is consumed, but feature extraction runs
    /// once over *all* clean windows ([`crate::features::extract_windows`],
    /// band-parallel) and normalisation is one batched
    /// [`Normalizer::transform`] over the resulting `[n, 80]` matrix. Both
    /// stages are row-local, so every emitted feature vector is
    /// bitwise-identical to what the per-sample path would have produced —
    /// including the quarantine/emit counters and their order.
    pub fn push_block(&mut self, block: &Tensor) -> Result<Vec<Tensor>, PreprocessError> {
        if block.rank() != 2 || block.cols() != CHANNELS {
            return Err(TensorError::ShapeMismatch {
                left: block.shape().dims().to_vec(),
                right: vec![CHANNELS],
                op: "push_block",
            }
            .into());
        }
        // Pass 1: assemble candidate windows, quarantining tainted ones
        // exactly as the per-sample path does.
        let mut candidates = Vec::new();
        for i in 0..block.rows() {
            let row = block.row(i);
            self.valid.push(row.iter().all(|v| v.is_finite()));
            let mut sample = [0.0f32; CHANNELS];
            sample.copy_from_slice(row);
            self.buffer.push(sample);
            if self.buffer.len() < self.window_len {
                continue;
            }
            if self.valid.iter().any(|&ok| !ok) {
                self.slide();
                self.quarantined += 1;
                pilote_obs::counter("stream.windows_quarantined").inc();
                continue;
            }
            let mut flat = Vec::with_capacity(self.window_len * CHANNELS);
            for row in &self.buffer {
                flat.extend_from_slice(row);
            }
            let window = Tensor::from_vec(flat, [self.window_len, CHANNELS])?;
            candidates.push(if self.denoise_width > 1 {
                moving_average(&window, self.denoise_width)?
            } else {
                window
            });
            self.slide();
        }
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        // Pass 2: one batched extraction + one batched normalisation over
        // every clean window in the block.
        let features = extract_windows(&candidates)?;
        let features = match &self.normalizer {
            Some(norm) => norm.transform(&features)?,
            None => features,
        };
        // Pass 3: the same per-window finite screen as the streaming path.
        let mut out = Vec::with_capacity(candidates.len());
        for i in 0..candidates.len() {
            let row = features.row(i);
            if row.iter().any(|v| !v.is_finite()) {
                self.quarantined += 1;
                pilote_obs::counter("stream.windows_quarantined").inc();
                continue;
            }
            self.emitted += 1;
            pilote_obs::counter("stream.windows_emitted").inc();
            out.push(Tensor::vector(row));
        }
        Ok(out)
    }
}

/// Watches a feature stream for covariate drift relative to reference
/// statistics, using a per-feature standardised mean shift.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    reference_mean: Vec<f32>,
    reference_std: Vec<f32>,
    window: Vec<Welford>,
    threshold: f32,
}

impl DriftMonitor {
    /// New monitor against reference per-feature statistics; `threshold`
    /// is the |standardised shift| at which [`DriftMonitor::drifted`]
    /// fires (2–3 is a reasonable range).
    pub fn new(reference_mean: Vec<f32>, reference_std: Vec<f32>, threshold: f32) -> Self {
        assert_eq!(reference_mean.len(), reference_std.len());
        assert!(threshold > 0.0);
        let d = reference_mean.len();
        DriftMonitor {
            reference_mean,
            reference_std,
            window: vec![Welford::new(); d],
            threshold,
        }
    }

    /// Builds a monitor from a reference feature matrix.
    pub fn from_reference(reference: &Tensor, threshold: f32) -> Result<Self, TensorError> {
        let mean = reference.mean_axis(pilote_tensor::reduce::Axis::Rows)?;
        let var = reference.var_axis(pilote_tensor::reduce::Axis::Rows)?;
        Ok(DriftMonitor::new(
            mean.into_vec(),
            var.into_vec().into_iter().map(f32::sqrt).collect(),
            threshold,
        ))
    }

    /// Feeds one feature vector.
    pub fn observe(&mut self, features: &Tensor) {
        assert_eq!(features.len(), self.window.len(), "feature width mismatch");
        for (w, &v) in self.window.iter_mut().zip(features.as_slice()) {
            w.push(v);
        }
    }

    /// Observations accumulated.
    pub fn count(&self) -> u64 {
        self.window.first().map_or(0, Welford::count)
    }

    /// Largest per-feature standardised mean shift seen so far.
    pub fn max_shift(&self) -> f32 {
        self.window
            .iter()
            .zip(self.reference_mean.iter().zip(&self.reference_std))
            .map(|(w, (&m, &s))| ((w.mean() - m) / s.max(1e-6)).abs())
            .fold(0.0f32, f32::max)
    }

    /// Whether drift beyond the threshold has been observed (requires at
    /// least 10 observations to avoid firing on noise).
    pub fn drifted(&self) -> bool {
        self.count() >= 10 && self.max_shift() > self.threshold
    }

    /// Clears the observation window (after a re-calibration).
    pub fn reset(&mut self) {
        for w in &mut self.window {
            *w = Welford::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::simulate::Simulator;

    #[test]
    fn assembler_emits_at_window_boundaries() {
        let mut asm = WindowAssembler::new(120, 120, 1);
        let mut sim = Simulator::with_seed(1);
        let session = sim.session(Activity::Walk, 3); // 360 samples
        let feats = asm.push_block(&session).unwrap();
        assert_eq!(feats.len(), 3);
        assert_eq!(asm.emitted(), 3);
        assert_eq!(asm.buffered(), 0);
        for f in feats {
            assert_eq!(f.len(), FEATURE_DIM);
            assert!(f.all_finite());
        }
    }

    #[test]
    fn overlapping_stride_emits_more_windows() {
        let mut asm = WindowAssembler::new(120, 60, 1);
        let mut sim = Simulator::with_seed(2);
        let session = sim.session(Activity::Run, 3);
        let feats = asm.push_block(&session).unwrap();
        // starts at 0,60,120,180,240 → 5 windows in 360 samples
        assert_eq!(feats.len(), 5);
    }

    #[test]
    fn streamed_features_match_batch_extraction() {
        // With stride == window and no denoising/normalisation, streaming
        // must reproduce offline extraction exactly.
        let mut sim = Simulator::with_seed(3);
        let session = sim.session(Activity::Drive, 2);
        let mut asm = WindowAssembler::new(120, 120, 1);
        let streamed = asm.push_block(&session).unwrap();
        for (i, f) in streamed.iter().enumerate() {
            let window = session.slice_rows(i * 120, (i + 1) * 120).unwrap();
            let offline = extract(&window).unwrap();
            assert!(f.max_abs_diff(&offline).unwrap() < 1e-6, "window {i}");
        }
    }

    #[test]
    fn normalizer_is_applied_to_stream() {
        let mut sim = Simulator::with_seed(4);
        let raw = sim.raw_dataset(&[(Activity::Walk, 30)]);
        let features = crate::features::extract_batch(&raw).unwrap();
        let (norm, normed) = Normalizer::fit_transform(&features).unwrap();

        let mut asm = WindowAssembler::new(120, 120, 1).with_normalizer(norm);
        let first_window = &raw.windows[0];
        let out = asm.push_block(first_window).unwrap();
        assert_eq!(out.len(), 1);
        let expected = Tensor::vector(normed.row(0));
        assert!(out[0].max_abs_diff(&expected).unwrap() < 1e-5);
    }

    #[test]
    fn drift_monitor_fires_on_distribution_shift() {
        let mut sim = Simulator::with_seed(5);
        let walk = sim.raw_dataset(&[(Activity::Walk, 40)]);
        let walk_features = crate::features::extract_batch(&walk).unwrap();
        let mut monitor = DriftMonitor::from_reference(&walk_features, 3.0).unwrap();

        // Same distribution: no drift.
        let more_walk = sim.raw_dataset(&[(Activity::Walk, 20)]);
        for w in &more_walk.windows {
            monitor.observe(&extract(w).unwrap());
        }
        assert!(!monitor.drifted(), "false positive, shift {}", monitor.max_shift());

        // A different activity: strong drift.
        monitor.reset();
        let run = sim.raw_dataset(&[(Activity::Run, 20)]);
        for w in &run.windows {
            monitor.observe(&extract(w).unwrap());
        }
        assert!(monitor.drifted(), "missed drift, shift {}", monitor.max_shift());
    }

    #[test]
    fn non_finite_sample_quarantines_every_window_containing_it() {
        // stride 60, window 120: a tainted sample poisons the two windows
        // that overlap it.
        let mut asm = WindowAssembler::new(120, 60, 1);
        let mut sim = Simulator::with_seed(7);
        let mut session = sim.session(Activity::Walk, 3); // 360 samples
        session.row_mut(90)[4] = f32::NAN;
        let feats = asm.push_block(&session).unwrap();
        // starts 0,60,120,180,240 → windows [0,120) and [60,180) are tainted
        assert_eq!(asm.quarantined(), 2);
        assert_eq!(feats.len(), 3);
        assert_eq!(asm.emitted(), 3);
        for f in &feats {
            assert!(f.all_finite());
        }
    }

    #[test]
    fn clean_stream_quarantines_nothing() {
        let mut asm = WindowAssembler::new(120, 120, 1);
        let mut sim = Simulator::with_seed(8);
        let session = sim.session(Activity::Run, 4);
        let feats = asm.push_block(&session).unwrap();
        assert_eq!(asm.quarantined(), 0);
        assert_eq!(feats.len(), 4);
    }

    #[test]
    fn infinite_sample_is_quarantined_too() {
        let mut asm = WindowAssembler::new(120, 120, 1);
        let mut sim = Simulator::with_seed(9);
        let mut session = sim.session(Activity::Still, 2);
        session.row_mut(200)[0] = f32::INFINITY;
        let feats = asm.push_block(&session).unwrap();
        assert_eq!(asm.quarantined(), 1);
        assert_eq!(feats.len(), 1);
    }

    #[test]
    fn batched_block_path_matches_per_sample_push_bitwise() {
        // push_block batches extraction + normalisation; the per-sample
        // path runs them window by window. Outputs and counters must be
        // bitwise-identical, including around a quarantined window.
        let mut sim = Simulator::with_seed(10);
        let raw = sim.raw_dataset(&[(Activity::Walk, 30)]);
        let features = crate::features::extract_batch(&raw).unwrap();
        let (norm, _) = Normalizer::fit_transform(&features).unwrap();

        let mut session = sim.session(Activity::Run, 5); // 600 samples
        session.row_mut(150)[2] = f32::NAN; // taints windows 1 and 2 at stride 60

        let mut batched = WindowAssembler::new(120, 60, 3).with_normalizer(norm.clone());
        let block_out = batched.push_block(&session).unwrap();

        let mut streamed = WindowAssembler::new(120, 60, 3).with_normalizer(norm);
        let mut push_out = Vec::new();
        for i in 0..session.rows() {
            let mut sample = [0.0f32; CHANNELS];
            sample.copy_from_slice(session.row(i));
            if let Some(f) = streamed.push(sample).unwrap() {
                push_out.push(f);
            }
        }

        assert_eq!(batched.emitted(), streamed.emitted());
        assert_eq!(batched.quarantined(), streamed.quarantined());
        assert!(batched.quarantined() >= 1, "the NaN must quarantine at least one window");
        assert_eq!(block_out.len(), push_out.len());
        for (i, (a, b)) in block_out.iter().zip(&push_out).enumerate() {
            let same = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "window {i} diverged between block and per-sample paths");
        }
    }

    #[test]
    fn drift_monitor_needs_minimum_observations() {
        let reference = Tensor::zeros([5, 3]);
        let mut m = DriftMonitor::new(vec![0.0; 3], vec![1.0; 3], 1.0);
        let _ = reference;
        m.observe(&Tensor::vector(&[100.0, 100.0, 100.0]));
        assert!(!m.drifted(), "fired with a single observation");
    }
}
