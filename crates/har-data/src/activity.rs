//! The five activity classes and their signal-model parameters.

use serde::{Deserialize, Serialize};

/// The five human physical activities of the paper's campaign (§6.1.1).
///
/// The canonical label of an activity is its discriminant
/// ([`Activity::label`]); the incremental-learning experiments pick one
/// activity as the "new class" and pre-train on the remaining four.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Riding in / driving a car.
    Drive,
    /// Riding a stand-up electric scooter.
    EScooter,
    /// Running.
    Run,
    /// Stationary (sitting/standing, phone at rest).
    Still,
    /// Walking.
    Walk,
}

impl Activity {
    /// All five activities in canonical (alphabetical, paper Table 2) order.
    pub const ALL: [Activity; 5] =
        [Activity::Drive, Activity::EScooter, Activity::Run, Activity::Still, Activity::Walk];

    /// Canonical integer label (index into [`Activity::ALL`]).
    pub fn label(self) -> usize {
        match self {
            Activity::Drive => 0,
            Activity::EScooter => 1,
            Activity::Run => 2,
            Activity::Still => 3,
            Activity::Walk => 4,
        }
    }

    /// Inverse of [`Activity::label`].
    pub fn from_label(label: usize) -> Option<Activity> {
        Activity::ALL.get(label).copied()
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Activity::Drive => "Drive",
            Activity::EScooter => "E-scooter",
            Activity::Run => "Run",
            Activity::Still => "Still",
            Activity::Walk => "Walk",
        }
    }
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Population-level signal-model parameters for one activity.
///
/// Each simulated window samples a "user" whose concrete parameters are
/// drawn from the uniform ranges below; the ranges for Walk and Run
/// intentionally overlap (cadence 2.0–2.3 Hz, amplitude 18–28 m/s²·10⁻¹)
/// so that slow runners and brisk walkers are genuinely confusable — the
/// property the paper's Fig. 4 hinges on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityModel {
    /// Gait / dominant oscillation frequency range in Hz (0 for none).
    pub gait_hz: (f32, f32),
    /// Vertical body-motion amplitude range (m/s²).
    pub gait_amp: (f32, f32),
    /// Relative strength of the second harmonic of the gait.
    pub harmonic2: f32,
    /// Machine-vibration frequency range in Hz (0 for none).
    pub vibration_hz: (f32, f32),
    /// Machine-vibration amplitude range (m/s²).
    pub vibration_amp: (f32, f32),
    /// Forward travel speed range (m/s).
    pub speed: (f32, f32),
    /// Angular sway amplitude range (rad/s) on the gyroscope.
    pub sway: (f32, f32),
    /// Rate of random road/terrain impulse events per second.
    pub bump_rate: f32,
    /// Impulse magnitude (m/s²).
    pub bump_amp: f32,
    /// Baseline accelerometer noise σ (m/s²).
    pub noise: f32,
}

impl Activity {
    /// The population model for this activity.
    pub fn model(self) -> ActivityModel {
        match self {
            Activity::Drive => ActivityModel {
                gait_hz: (0.0, 0.0),
                gait_amp: (0.0, 0.0),
                harmonic2: 0.0,
                vibration_hz: (15.0, 35.0),
                vibration_amp: (0.2, 1.0),
                speed: (2.5, 25.0),
                sway: (0.02, 0.12),
                bump_rate: 1.8,
                bump_amp: 1.4,
                noise: 0.15,
            },
            Activity::EScooter => ActivityModel {
                gait_hz: (0.0, 0.0),
                gait_amp: (0.0, 0.0),
                harmonic2: 0.0,
                vibration_hz: (22.0, 45.0),
                vibration_amp: (0.3, 1.2),
                speed: (2.5, 10.0),
                sway: (0.06, 0.3),
                bump_rate: 2.4,
                bump_amp: 1.2,
                noise: 0.17,
            },
            Activity::Run => ActivityModel {
                gait_hz: (1.8, 3.2),
                gait_amp: (1.5, 5.0),
                harmonic2: 0.42,
                vibration_hz: (0.0, 0.0),
                vibration_amp: (0.0, 0.0),
                speed: (1.6, 4.5),
                sway: (0.4, 1.4),
                bump_rate: 0.0,
                bump_amp: 0.0,
                noise: 0.2,
            },
            Activity::Still => ActivityModel {
                gait_hz: (0.0, 0.0),
                gait_amp: (0.0, 0.0),
                harmonic2: 0.0,
                vibration_hz: (0.0, 0.0),
                vibration_amp: (0.0, 0.0),
                speed: (0.0, 0.05),
                sway: (0.0, 0.01),
                bump_rate: 0.0,
                bump_amp: 0.0,
                noise: 0.03,
            },
            Activity::Walk => ActivityModel {
                gait_hz: (1.4, 2.6),
                gait_amp: (0.9, 3.5),
                harmonic2: 0.35,
                vibration_hz: (0.0, 0.0),
                vibration_amp: (0.0, 0.0),
                speed: (0.8, 2.8),
                sway: (0.2, 0.9),
                bump_rate: 0.0,
                bump_amp: 0.0,
                noise: 0.15,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for (i, &a) in Activity::ALL.iter().enumerate() {
            assert_eq!(a.label(), i);
            assert_eq!(Activity::from_label(i), Some(a));
        }
        assert_eq!(Activity::from_label(5), None);
    }

    #[test]
    fn names_match_paper_table() {
        let names: Vec<&str> = Activity::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["Drive", "E-scooter", "Run", "Still", "Walk"]);
    }

    #[test]
    fn walk_run_cadence_ranges_overlap() {
        // The deliberate confusability region.
        let walk = Activity::Walk.model();
        let run = Activity::Run.model();
        assert!(walk.gait_hz.1 > run.gait_hz.0, "walk {:?} vs run {:?}", walk.gait_hz, run.gait_hz);
        assert!(walk.gait_amp.1 > run.gait_amp.0);
    }

    #[test]
    fn still_is_the_quietest() {
        let still = Activity::Still.model();
        for a in Activity::ALL {
            if a != Activity::Still {
                assert!(a.model().noise > still.noise);
            }
        }
    }

    #[test]
    fn drive_and_escooter_are_vibration_activities() {
        for a in [Activity::Drive, Activity::EScooter] {
            let m = a.model();
            assert!(m.vibration_hz.0 > 0.0);
            assert!(m.gait_hz.1 == 0.0);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Activity::EScooter.to_string(), "E-scooter");
    }
}
