//! The 22-channel sensor layout of the simulated device.
//!
//! Matches the paper's description of "roughly 120 sequential measurements
//! from 22 mobile sensors, e.g., accelerometer, gyroscope, and
//! magnetometer": five 3-axis sensors (15 channels) plus seven scalar
//! channels.

/// Number of sensor channels per sample.
pub const CHANNELS: usize = 22;

/// Number of 3-axis sensor triads.
pub const TRIADS: usize = 5;

/// Samples per one-second window (the paper's ~120 Hz recording rate).
pub const WINDOW_LEN: usize = 120;

/// Sampling rate in Hz.
pub const SAMPLE_RATE_HZ: f32 = 120.0;

/// A 3-axis sensor triad; its channels are `3*index .. 3*index + 3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Triad {
    /// Raw accelerometer (includes gravity).
    Accelerometer,
    /// Gyroscope (angular rate).
    Gyroscope,
    /// Magnetometer.
    Magnetometer,
    /// Linear acceleration (gravity removed).
    LinearAcceleration,
    /// Gravity vector estimate.
    Gravity,
}

impl Triad {
    /// All triads in channel order.
    pub const ALL: [Triad; TRIADS] = [
        Triad::Accelerometer,
        Triad::Gyroscope,
        Triad::Magnetometer,
        Triad::LinearAcceleration,
        Triad::Gravity,
    ];

    /// First channel index of this triad.
    pub fn base_channel(self) -> usize {
        match self {
            Triad::Accelerometer => 0,
            Triad::Gyroscope => 3,
            Triad::Magnetometer => 6,
            Triad::LinearAcceleration => 9,
            Triad::Gravity => 12,
        }
    }

    /// The `(x, y, z)` channel indices of this triad.
    pub fn channels(self) -> [usize; 3] {
        let b = self.base_channel();
        [b, b + 1, b + 2]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Triad::Accelerometer => "accelerometer",
            Triad::Gyroscope => "gyroscope",
            Triad::Magnetometer => "magnetometer",
            Triad::LinearAcceleration => "linear_acceleration",
            Triad::Gravity => "gravity",
        }
    }
}

/// Scalar (single-channel) sensors occupying channels 15..22.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// Barometric pressure (hPa, mean-removed).
    Pressure,
    /// Ambient light (log-lux).
    Light,
    /// Proximity (binary-ish, near = 1).
    Proximity,
    /// GPS ground speed (m/s).
    GpsSpeed,
    /// Microphone RMS level (normalised).
    AudioLevel,
    /// Device temperature deviation (°C).
    Temperature,
    /// Step-detector event rate (steps/s).
    StepRate,
}

impl Scalar {
    /// All scalar sensors in channel order.
    pub const ALL: [Scalar; 7] = [
        Scalar::Pressure,
        Scalar::Light,
        Scalar::Proximity,
        Scalar::GpsSpeed,
        Scalar::AudioLevel,
        Scalar::Temperature,
        Scalar::StepRate,
    ];

    /// Channel index of this scalar sensor.
    pub fn channel(self) -> usize {
        15 + Scalar::ALL.iter().position(|&s| s == self).expect("member of ALL")
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scalar::Pressure => "pressure",
            Scalar::Light => "light",
            Scalar::Proximity => "proximity",
            Scalar::GpsSpeed => "gps_speed",
            Scalar::AudioLevel => "audio_level",
            Scalar::Temperature => "temperature",
            Scalar::StepRate => "step_rate",
        }
    }
}

/// Name of an arbitrary channel index, e.g. `"accelerometer_y"`.
pub fn channel_name(channel: usize) -> String {
    assert!(channel < CHANNELS, "channel {channel} out of range");
    if channel < 15 {
        let triad = Triad::ALL[channel / 3];
        let axis = ["x", "y", "z"][channel % 3];
        format!("{}_{axis}", triad.name())
    } else {
        Scalar::ALL[channel - 15].name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_budget_adds_up() {
        assert_eq!(TRIADS * 3 + Scalar::ALL.len(), CHANNELS);
    }

    #[test]
    fn triad_channels_are_disjoint_and_contiguous() {
        let mut seen = [false; 15];
        for t in Triad::ALL {
            for c in t.channels() {
                assert!(!seen[c], "channel {c} reused");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scalar_channels_fill_the_tail() {
        let chans: Vec<usize> = Scalar::ALL.iter().map(|s| s.channel()).collect();
        assert_eq!(chans, (15..22).collect::<Vec<_>>());
    }

    #[test]
    fn channel_names_are_unique() {
        let names: Vec<String> = (0..CHANNELS).map(channel_name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), CHANNELS, "{names:?}");
        assert_eq!(channel_name(1), "accelerometer_y");
        assert_eq!(channel_name(21), "step_rate");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_name_rejects_out_of_range() {
        let _ = channel_name(22);
    }
}
