//! Linear-time preprocessing: denoising, segmentation, normalisation.
//!
//! The paper (§5): "The preprocessing steps (e.g., denoising, segmentation,
//! normalization, etc.), with linear time operations, are conducted equally
//! on the Cloud and Edge devices."

use pilote_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Typed errors for the preprocessing pipeline.
///
/// Preprocessing runs on the edge against live sensor data, so every
/// fallible path reports a recoverable error instead of panicking — a bad
/// window must be quarantined (see `stream::WindowAssembler`), not crash
/// the device.
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessError {
    /// An underlying tensor operation failed (shape/rank mismatch, …).
    Tensor(TensorError),
    /// The moving-average width was even or zero.
    EvenDenoiseWidth {
        /// The rejected width.
        width: usize,
    },
    /// Segmentation was asked for a zero-length window or stride.
    ZeroSegment {
        /// The rejected window length.
        window_len: usize,
        /// The rejected stride.
        stride: usize,
    },
    /// The input contained a NaN/Inf sample at the given position.
    NonFiniteInput {
        /// Row (time index) of the offending cell.
        row: usize,
        /// Column (channel index) of the offending cell.
        col: usize,
    },
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::Tensor(e) => write!(f, "tensor error: {e}"),
            PreprocessError::EvenDenoiseWidth { width } => {
                write!(f, "moving-average width must be odd and ≥ 1, got {width}")
            }
            PreprocessError::ZeroSegment { window_len, stride } => {
                write!(f, "window_len and stride must be positive, got {window_len}/{stride}")
            }
            PreprocessError::NonFiniteInput { row, col } => {
                write!(f, "non-finite input sample at row {row}, channel {col}")
            }
        }
    }
}

impl std::error::Error for PreprocessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PreprocessError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for PreprocessError {
    fn from(e: TensorError) -> Self {
        PreprocessError::Tensor(e)
    }
}

/// Centred moving-average filter over each channel of a `[time, channels]`
/// window. `width` must be odd; boundary samples use the available
/// neighbourhood (shrinking window). O(time · channels).
pub fn moving_average(window: &Tensor, width: usize) -> Result<Tensor, PreprocessError> {
    if window.rank() != 2 {
        return Err(TensorError::RankMismatch { got: window.rank(), expected: 2, op: "moving_average" }.into());
    }
    if width % 2 != 1 {
        return Err(PreprocessError::EvenDenoiseWidth { width });
    }
    let (n, c) = (window.rows(), window.cols());
    let half = width / 2;
    let mut out = Tensor::zeros([n, c]);
    // Prefix sums per channel for O(1) range means.
    let mut prefix = vec![0.0f64; (n + 1) * c];
    for t in 0..n {
        for ch in 0..c {
            prefix[(t + 1) * c + ch] = prefix[t * c + ch] + window.at(t, ch) as f64;
        }
    }
    for t in 0..n {
        let lo = t.saturating_sub(half);
        let hi = (t + half + 1).min(n);
        let len = (hi - lo) as f64;
        let row = out.row_mut(t);
        for (ch, v) in row.iter_mut().enumerate() {
            *v = ((prefix[hi * c + ch] - prefix[lo * c + ch]) / len) as f32;
        }
    }
    Ok(out)
}

/// Splits a long `[time, channels]` session into fixed-length windows with
/// the given stride. Trailing samples that do not fill a window are
/// dropped. O(time · channels).
pub fn segment(session: &Tensor, window_len: usize, stride: usize) -> Result<Vec<Tensor>, PreprocessError> {
    if session.rank() != 2 {
        return Err(TensorError::RankMismatch { got: session.rank(), expected: 2, op: "segment" }.into());
    }
    if window_len == 0 || stride == 0 {
        return Err(PreprocessError::ZeroSegment { window_len, stride });
    }
    let n = session.rows();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + window_len <= n {
        out.push(session.slice_rows(start, start + window_len)?);
        start += stride;
    }
    Ok(out)
}

/// Per-column z-score normaliser with statistics fitted on training data.
///
/// The same fitted transform must be applied to train, validation, test and
/// edge-streamed data — fitting on test data would leak. Columns with
/// near-zero spread are passed through centred but unscaled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits per-column mean and standard deviation on `data` (`[n, d]`).
    pub fn fit(data: &Tensor) -> Result<Self, PreprocessError> {
        if data.rank() != 2 {
            return Err(TensorError::RankMismatch { got: data.rank(), expected: 2, op: "Normalizer::fit" }.into());
        }
        let mean = data.mean_axis(pilote_tensor::reduce::Axis::Rows)?;
        let var = data.var_axis(pilote_tensor::reduce::Axis::Rows)?;
        Ok(Normalizer {
            mean: mean.into_vec(),
            std: var.into_vec().into_iter().map(|v| v.sqrt()).collect(),
        })
    }

    /// Number of columns the normaliser was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Fitted per-column means, in column order (for wire encoding).
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Fitted per-column standard deviations, in column order (for wire
    /// encoding).
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Rebuilds a normaliser from fitted statistics (the wire-decode
    /// counterpart of [`Normalizer::mean`]/[`Normalizer::std`]).
    ///
    /// # Errors
    /// [`PreprocessError`] when the two slices disagree in length.
    pub fn from_parts(mean: Vec<f32>, std: Vec<f32>) -> Result<Self, PreprocessError> {
        if mean.len() != std.len() {
            return Err(TensorError::ShapeMismatch {
                left: vec![mean.len()],
                right: vec![std.len()],
                op: "Normalizer::from_parts",
            }
            .into());
        }
        Ok(Normalizer { mean, std })
    }

    /// Applies the fitted transform to `data` (`[n, d]`).
    pub fn transform(&self, data: &Tensor) -> Result<Tensor, PreprocessError> {
        if data.rank() != 2 || data.cols() != self.dim() {
            return Err(TensorError::ShapeMismatch {
                left: data.shape().dims().to_vec(),
                right: vec![self.dim()],
                op: "Normalizer::transform",
            }
            .into());
        }
        let mut out = data.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v -= self.mean[j];
                if self.std[j] > 1e-6 {
                    *v /= self.std[j];
                }
            }
        }
        Ok(out)
    }

    /// Fits on `data` and returns both the normaliser and the transformed
    /// data.
    pub fn fit_transform(data: &Tensor) -> Result<(Self, Tensor), PreprocessError> {
        let norm = Self::fit(data)?;
        let out = norm.transform(data)?;
        Ok((norm, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilote_tensor::reduce::Axis;
    use pilote_tensor::Rng64;

    #[test]
    fn moving_average_smooths_constant_plus_noise() {
        let mut rng = Rng64::new(1);
        let noisy = Tensor::randn([200, 2], 5.0, 1.0, &mut rng);
        let smooth = moving_average(&noisy, 11).unwrap();
        let v_noisy = noisy.var_axis(Axis::Rows).unwrap().mean();
        let v_smooth = smooth.var_axis(Axis::Rows).unwrap().mean();
        assert!(v_smooth < v_noisy / 4.0, "{v_smooth} vs {v_noisy}");
        // The mean is preserved.
        assert!((smooth.mean() - noisy.mean()).abs() < 0.1);
    }

    #[test]
    fn moving_average_width_one_is_identity() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let out = moving_average(&t, 1).unwrap();
        assert!(out.max_abs_diff(&t).unwrap() < 1e-6);
    }

    #[test]
    fn moving_average_boundary_shrinks() {
        let t = Tensor::from_rows(&[vec![0.0], vec![3.0], vec![6.0]]).unwrap();
        let out = moving_average(&t, 3).unwrap();
        // first sample averages rows 0..2, middle averages all, last rows 1..3
        assert!((out.at(0, 0) - 1.5).abs() < 1e-6);
        assert!((out.at(1, 0) - 3.0).abs() < 1e-6);
        assert!((out.at(2, 0) - 4.5).abs() < 1e-6);
    }

    #[test]
    fn moving_average_rejects_even_width() {
        match moving_average(&Tensor::zeros([4, 1]), 2) {
            Err(PreprocessError::EvenDenoiseWidth { width: 2 }) => {}
            other => panic!("expected EvenDenoiseWidth, got {other:?}"),
        }
    }

    #[test]
    fn segment_rejects_zero_window_or_stride() {
        let session = Tensor::zeros([10, 2]);
        assert!(matches!(
            segment(&session, 0, 5),
            Err(PreprocessError::ZeroSegment { window_len: 0, stride: 5 })
        ));
        assert!(matches!(
            segment(&session, 5, 0),
            Err(PreprocessError::ZeroSegment { window_len: 5, stride: 0 })
        ));
    }

    #[test]
    fn preprocess_error_displays_and_sources() {
        let e = PreprocessError::NonFiniteInput { row: 3, col: 7 };
        assert!(e.to_string().contains("row 3"));
        let wrapped: PreprocessError =
            TensorError::RankMismatch { got: 1, expected: 2, op: "x" }.into();
        assert!(std::error::Error::source(&wrapped).is_some());
    }

    #[test]
    fn segment_counts_non_overlapping() {
        let session = Tensor::zeros([350, 3]);
        let wins = segment(&session, 100, 100).unwrap();
        assert_eq!(wins.len(), 3);
        assert_eq!(wins[0].shape().dims(), &[100, 3]);
    }

    #[test]
    fn segment_overlapping_stride() {
        let session = Tensor::zeros([100, 2]);
        let wins = segment(&session, 50, 25).unwrap();
        assert_eq!(wins.len(), 3); // starts 0, 25, 50
    }

    #[test]
    fn segment_shorter_than_window_is_empty() {
        let session = Tensor::zeros([10, 2]);
        assert!(segment(&session, 50, 50).unwrap().is_empty());
    }

    #[test]
    fn segment_preserves_values() {
        let data: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let session = Tensor::from_vec(data, [10, 2]).unwrap();
        let wins = segment(&session, 4, 3).unwrap();
        assert_eq!(wins[1].at(0, 0), 6.0); // row 3, channel 0
    }

    #[test]
    fn normalizer_standardises_train_data() {
        let mut rng = Rng64::new(2);
        let data = Tensor::randn([500, 4], 10.0, 3.0, &mut rng);
        let (_, out) = Normalizer::fit_transform(&data).unwrap();
        let mean = out.mean_axis(Axis::Rows).unwrap();
        let var = out.var_axis(Axis::Rows).unwrap();
        for &m in mean.as_slice() {
            assert!(m.abs() < 1e-4);
        }
        for &v in var.as_slice() {
            assert!((v - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn normalizer_applies_train_stats_to_test() {
        let train = Tensor::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let norm = Normalizer::fit(&train).unwrap();
        let test = Tensor::from_rows(&[vec![3.0]]).unwrap();
        let out = norm.transform(&test).unwrap();
        // (3 − 1)/1 = 2
        assert!((out.at(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn normalizer_constant_column_passthrough() {
        let train = Tensor::from_rows(&[vec![5.0, 1.0], vec![5.0, 3.0]]).unwrap();
        let norm = Normalizer::fit(&train).unwrap();
        let out = norm.transform(&train).unwrap();
        // constant column centred to 0, not divided
        assert_eq!(out.at(0, 0), 0.0);
        assert!(out.all_finite());
    }

    #[test]
    fn normalizer_dimension_check() {
        let train = Tensor::zeros([3, 2]);
        let norm = Normalizer::fit(&train).unwrap();
        assert!(norm.transform(&Tensor::zeros([3, 5])).is_err());
    }

    #[test]
    fn normalizer_serde_round_trip() {
        let train = Tensor::from_rows(&[vec![0.0, 1.0], vec![2.0, 5.0]]).unwrap();
        let norm = Normalizer::fit(&train).unwrap();
        let json = serde_json::to_string(&norm).unwrap();
        let back: Normalizer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, norm);
    }
}
