//! Kernel work accounting: how much computation has been dispatched, in
//! approximate floating-point operations, per kernel kind.
//!
//! This module is the deterministic *currency of time* for the rest of the
//! workspace. Every instrumented tensor kernel calls [`record`] once per
//! dispatch with a flop estimate computed **from operand shapes alone**
//! (`2·m·n·k` for a GEMM, and so on), on the dispatching thread, *before*
//! any band fan-out. The count is therefore identical at every
//! `PILOTE_THREADS` setting and on every host — which is what lets
//! `pilote-magneto` advance its virtual device clock by *modeled* work
//! instead of host wall-time measurements.
//!
//! Two tallies are kept:
//!
//! * a **thread-local** flop total ([`thread_flops`]) — used by callers
//!   that need the work attributable to their own computation (the edge
//!   device's virtual clock, span costs) without interference from
//!   unrelated threads (e.g. concurrently running tests);
//! * **global** per-kind dispatch/flop totals ([`kernel_totals`]) — the
//!   `tensor.*` kernel section of [`crate::Snapshot`].
//!
//! Work accounting is **not** gated by the `PILOTE_OBS` kill switch: the
//! virtual-clock model must behave identically whether or not telemetry is
//! collected. The cost is one thread-local add and two relaxed atomic adds
//! per kernel dispatch — far below the cost of any kernel worth counting
//! (benchmarked by `repro obs`).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The instrumented kernel families of `pilote-tensor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// `A @ B` (blocked GEMM).
    MatMul,
    /// `A @ Bᵀ` (backprop `dX`, pairwise dot products).
    MatMulT,
    /// `Aᵀ @ B` (backprop `dW`).
    TMatMul,
    /// Matrix–vector product.
    MatVec,
    /// Pairwise squared Euclidean distances (NCM scoring, contrastive
    /// loss).
    PairwiseDist,
}

impl KernelKind {
    /// Every instrumented kind, in a fixed order.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::MatMul,
        KernelKind::MatMulT,
        KernelKind::TMatMul,
        KernelKind::MatVec,
        KernelKind::PairwiseDist,
    ];

    /// Stable metric name (`tensor.<kernel>`).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::MatMul => "tensor.matmul",
            KernelKind::MatMulT => "tensor.matmul_t",
            KernelKind::TMatMul => "tensor.t_matmul",
            KernelKind::MatVec => "tensor.matvec",
            KernelKind::PairwiseDist => "tensor.pairwise_dist",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

thread_local! {
    static THREAD_FLOPS: Cell<u64> = const { Cell::new(0) };
}

static DISPATCHES: [AtomicU64; 5] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
static FLOPS: [AtomicU64; 5] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

/// Records one kernel dispatch of approximately `flops` floating-point
/// operations. Called by `pilote-tensor` on the dispatching thread; always
/// on (see module docs).
#[inline]
pub fn record(kind: KernelKind, flops: u64) {
    THREAD_FLOPS.with(|c| c.set(c.get().wrapping_add(flops)));
    let i = kind.index();
    DISPATCHES[i].fetch_add(1, Ordering::Relaxed);
    FLOPS[i].fetch_add(flops, Ordering::Relaxed);
}

/// Total flops dispatched *by the calling thread* since it started (or
/// since its counter last wrapped). Take a delta around a computation to
/// obtain its deterministic cost.
#[inline]
pub fn thread_flops() -> u64 {
    THREAD_FLOPS.with(Cell::get)
}

/// Global `(name, dispatches, flops)` totals per kernel kind, in
/// [`KernelKind::ALL`] order.
pub fn kernel_totals() -> Vec<(&'static str, u64, u64)> {
    KernelKind::ALL
        .iter()
        .map(|k| {
            let i = k.index();
            (k.name(), DISPATCHES[i].load(Ordering::Relaxed), FLOPS[i].load(Ordering::Relaxed))
        })
        .collect()
}

/// Clears the global per-kind totals (thread-local totals are deltas by
/// construction and never need resetting). Called by [`crate::reset`].
pub(crate) fn reset_globals() {
    for i in 0..KernelKind::ALL.len() {
        DISPATCHES[i].store(0, Ordering::Relaxed);
        FLOPS[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_flops_is_a_running_total() {
        let before = thread_flops();
        record(KernelKind::MatMul, 100);
        record(KernelKind::PairwiseDist, 23);
        assert_eq!(thread_flops() - before, 123);
    }

    #[test]
    fn thread_flops_isolated_across_threads() {
        let before = thread_flops();
        std::thread::scope(|s| {
            s.spawn(|| {
                record(KernelKind::MatVec, 1_000_000);
            })
            .join()
            .expect("worker");
        });
        assert_eq!(thread_flops(), before, "another thread's work must not leak in");
    }

    #[test]
    fn kernel_totals_follow_records() {
        // Globals are shared across parallel tests; assert on deltas of a
        // kind no other test in this crate touches concurrently.
        let before: u64 = kernel_totals()
            .iter()
            .find(|(n, _, _)| *n == "tensor.t_matmul")
            .map(|(_, d, _)| *d)
            .unwrap_or(0);
        record(KernelKind::TMatMul, 42);
        let after = kernel_totals()
            .iter()
            .find(|(n, _, _)| *n == "tensor.t_matmul")
            .map(|(_, d, _)| *d)
            .unwrap_or(0);
        assert_eq!(after - before, 1);
    }

    #[test]
    fn names_are_unique_and_prefixed() {
        let names: Vec<_> = KernelKind::ALL.iter().map(|k| k.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert!(names.iter().all(|n| n.starts_with("tensor.")));
    }
}
