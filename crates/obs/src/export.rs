//! Trace export: renders finished [`SpanNode`] trees to the Chrome
//! `trace_events` JSON format, loadable in `chrome://tracing` or Perfetto.
//!
//! The export preserves the crate's determinism contract: every field is a
//! function of the recorded spans alone. Timestamps (`ts`) are the spans'
//! **logical sequence ticks** (`seq_open`) and durations (`dur`) are tick
//! intervals (`seq_close - seq_open`) — never host time. The flop cost of
//! each span rides along in `args.flops`, together with any named span
//! attributes (e.g. the modeled `device_seconds` an edge update charged to
//! the virtual clock), so the viewer shows both the ordering of phases and
//! their deterministic work cost.
//!
//! Event order is depth-first (parent before children) over the root spans
//! in completion order; object keys are emitted in a fixed order. One seed
//! ⇒ byte-identical trace JSON at any `PILOTE_THREADS`.
//!
//! ```
//! use pilote_obs as obs;
//! obs::set_enabled(true);
//! obs::reset();
//! {
//!     let _update = obs::span("edge.update");
//!     let _train = obs::span("train");
//! }
//! let trace = obs::export::chrome_trace(&obs::snapshot().spans);
//! let text = serde_json::to_string(&trace).expect("serialise");
//! assert!(text.contains("\"traceEvents\""));
//! obs::reset();
//! ```

use crate::span::SpanNode;
use serde_json::{json, Value};

/// Renders finished root spans to a Chrome `trace_events` JSON document:
/// `{"displayTimeUnit": "ms", "traceEvents": [...]}` where each span
/// (recursively including children) becomes one complete (`"ph": "X"`)
/// event. An empty slice — e.g. from a kill-switched
/// [`Snapshot`](crate::Snapshot) — yields an empty `traceEvents` array,
/// still a valid trace document.
pub fn chrome_trace(spans: &[SpanNode]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for root in spans {
        push_events(root, &mut events);
    }
    json!({
        "displayTimeUnit": "ms",
        "traceEvents": events,
    })
}

/// Appends `node` and, depth-first, its children as complete events.
fn push_events(node: &SpanNode, events: &mut Vec<Value>) {
    let mut args: Vec<(String, Value)> = vec![("flops".to_string(), json!(node.flops))];
    for (key, value) in &node.attrs {
        args.push((key.clone(), json!(*value)));
    }
    events.push(json!({
        "name": node.name.clone(),
        "cat": "pilote",
        "ph": "X",
        "pid": 0,
        "tid": 0,
        "ts": node.seq_open,
        "dur": node.seq_close.saturating_sub(node.seq_open),
        "args": Value::Object(args),
    }));
    for child in &node.children {
        push_events(child, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn leaf(name: &str, open: u64, close: u64) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            seq_open: open,
            seq_close: close,
            flops: 0,
            attrs: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    #[test]
    fn empty_span_list_is_a_valid_empty_trace() {
        let trace = chrome_trace(&[]);
        let text = serde_json::to_string(&trace).expect("serialise");
        let back: Value = serde_json::from_str(&text).expect("parse");
        match &back {
            Value::Object(entries) => {
                let events = entries
                    .iter()
                    .find(|(k, _)| k == "traceEvents")
                    .map(|(_, v)| v)
                    .expect("traceEvents present");
                assert_eq!(events, &Value::Array(Vec::new()));
            }
            other => panic!("trace root must be an object, got {other:?}"),
        }
    }

    #[test]
    fn nested_spans_flatten_depth_first_with_logical_times() {
        let mut root = SpanNode {
            name: "outer".to_string(),
            seq_open: 0,
            seq_close: 5,
            flops: 640,
            attrs: [("device_seconds".to_string(), 0.25)].into_iter().collect(),
            children: vec![leaf("inner", 1, 2), leaf("second", 3, 4)],
        };
        root.children[0].flops = 64;
        let trace = chrome_trace(&[root]);
        let text = serde_json::to_string(&trace).expect("serialise");
        let back: Value = serde_json::from_str(&text).expect("round trip");
        let events = match &back {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == "traceEvents") {
                Some((_, Value::Array(events))) => events,
                other => panic!("traceEvents must be an array, got {other:?}"),
            },
            other => panic!("trace root must be an object, got {other:?}"),
        };
        assert_eq!(events.len(), 3, "parent + two children");
        let field = |event: &Value, key: &str| -> Value {
            match event {
                Value::Object(entries) => entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| panic!("event field {key} missing")),
                other => panic!("event must be an object, got {other:?}"),
            }
        };
        assert_eq!(field(&events[0], "name"), json!("outer"));
        assert_eq!(field(&events[1], "name"), json!("inner"));
        assert_eq!(field(&events[2], "name"), json!("second"));
        assert_eq!(field(&events[0], "ts"), json!(0u64));
        assert_eq!(field(&events[0], "dur"), json!(5u64));
        assert_eq!(field(&events[1], "dur"), json!(1u64));
        assert_eq!(field(&events[0], "ph"), json!("X"));
        let args = field(&events[0], "args");
        match &args {
            Value::Object(entries) => {
                assert!(entries.iter().any(|(k, v)| k == "flops" && *v == json!(640u64)));
                assert!(
                    entries.iter().any(|(k, v)| k == "device_seconds" && *v == json!(0.25)),
                    "span attrs must ride along in args"
                );
            }
            other => panic!("args must be an object, got {other:?}"),
        }
    }

    #[test]
    fn export_is_deterministic_for_identical_spans() {
        let spans = vec![leaf("a", 0, 1), leaf("b", 2, 3)];
        let once = serde_json::to_string(&chrome_trace(&spans)).expect("serialise");
        let twice = serde_json::to_string(&chrome_trace(&spans)).expect("serialise");
        assert_eq!(once, twice, "same spans must export byte-identically");
    }
}
