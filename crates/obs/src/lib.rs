//! # pilote-obs
//!
//! Deterministic observability for the PILOTE workspace: a metrics
//! registry (counters, gauges, fixed-bucket histograms), scoped trace
//! spans with parent/child nesting, and kernel work accounting — designed
//! so that **one seed ⇒ byte-identical telemetry at any thread count**,
//! matching the threading contract of `docs/THREADING.md`.
//!
//! The determinism contract (full statement in `docs/OBSERVABILITY.md`):
//!
//! * **No telemetry value is ever derived from the host wall clock.** This
//!   crate does not import [`std::time`] at all (grep-enforced by
//!   `scripts/ci.sh`). Spans are stamped with a logical sequence counter
//!   and *work* (floating-point operations dispatched while the span was
//!   open), both of which are functions of the computation alone.
//! * Host wall-time may still be *measured* by harness code (benchmarks,
//!   `EpochStats::seconds`) but lives in a separate domain: it must be
//!   projected through `pilote_edge_sim::DeviceProfile` from a
//!   deterministic work count — never from a host measurement — before it
//!   enters device-time telemetry such as the `EventLog` virtual clock.
//! * Counters are commutative (atomic adds), gauges and histograms are
//!   only written from deterministic values, and spans are only opened on
//!   the orchestration thread, so `PILOTE_THREADS` cannot reorder or
//!   change anything that [`snapshot`] reports.
//!
//! ## Kill switch
//!
//! `PILOTE_OBS=0` (or `false`/`off`) disables the registry and span
//! collection; every recording call becomes a single relaxed atomic load.
//! [`work`] accounting stays on regardless — the virtual-clock model of
//! `pilote-magneto` depends on it, and behaviour must not change with the
//! telemetry switch. The disabled-path overhead is benchmarked by
//! `repro obs` (< 5 % on the kernel hot loop; in practice unmeasurable).
//!
//! ```
//! use pilote_obs as obs;
//! obs::set_enabled(true);
//! obs::counter("demo.widgets").add(3);
//! let g = obs::gauge("demo.loss");
//! g.set(0.25);
//! {
//!     let _span = obs::span("demo.phase");
//!     obs::counter("demo.widgets").inc();
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counters.get("demo.widgets"), Some(&4));
//! obs::reset();
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod export;
pub mod registry;
pub mod span;
pub mod work;

pub use registry::{
    counter, gauge, histogram, reset, snapshot, Counter, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, KernelStats, Snapshot,
};
pub use span::{span, SpanGuard, SpanNode};
pub use work::KernelKind;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

fn enabled_cell() -> &'static AtomicBool {
    static CELL: OnceLock<AtomicBool> = OnceLock::new();
    CELL.get_or_init(|| {
        let on = match std::env::var("PILOTE_OBS") {
            Ok(v) => {
                let v = v.trim().to_ascii_lowercase();
                !(v == "0" || v == "false" || v == "off")
            }
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether telemetry collection is enabled (the `PILOTE_OBS` kill switch,
/// default on). Recording calls check this first; when disabled they cost
/// one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    enabled_cell().load(Ordering::Relaxed)
}

/// Programmatically flips the kill switch (overrides `PILOTE_OBS`).
/// Used by the benchmark harness to measure the disabled path.
pub fn set_enabled(on: bool) {
    enabled_cell().store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_toggles() {
        let saved = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(saved);
    }
}
