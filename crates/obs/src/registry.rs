//! The deterministic metrics registry: counters, gauges and fixed-bucket
//! histograms, snapshotted into a serialisable, byte-stable [`Snapshot`].
//!
//! Metrics are addressed by name; handles are cheap `Arc` clones, so hot
//! call sites can look a handle up once and keep it. All recording calls
//! are gated on the [`crate::enabled`] kill switch.
//!
//! Determinism: counters are atomic adds (commutative — thread interleaving
//! cannot change the final value); gauges and histograms must only be fed
//! values that are themselves deterministic functions of the seed (losses,
//! learning rates, modeled device seconds — never host wall-time). The
//! snapshot orders every section by name (`BTreeMap`), so serialising it
//! yields byte-identical JSON for identical recorded values.

use crate::work;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically-increasing event counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op when telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeState {
    last: f64,
    min: f64,
    max: f64,
    count: u64,
}

/// A last-value gauge that also tracks min/max and the number of sets.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<Mutex<GaugeState>>);

impl Gauge {
    /// Records a value. A no-op when telemetry is disabled.
    pub fn set(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let mut s = self.0.lock().expect("gauge lock poisoned");
        if s.count == 0 {
            s.min = value;
            s.max = value;
        } else {
            s.min = s.min.min(value);
            s.max = s.max.max(value);
        }
        s.last = value;
        s.count += 1;
    }

    /// Current state as a serialisable snapshot.
    pub fn read(&self) -> GaugeSnapshot {
        let s = self.0.lock().expect("gauge lock poisoned");
        GaugeSnapshot { last: s.last, min: s.min, max: s.max, count: s.count }
    }
}

/// Serialisable state of a [`Gauge`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value set so far.
    pub min: f64,
    /// Largest value set so far.
    pub max: f64,
    /// Number of sets.
    pub count: u64,
}

#[derive(Debug)]
struct HistogramState {
    /// Upper bucket bounds, ascending; an implicit overflow bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    /// NaN observations, counted separately: a poisoned value must never
    /// masquerade as a large one in the overflow bucket.
    nan: AtomicU64,
}

/// Bucket index for `value` under `bounds` (the overflow bucket is
/// `bounds.len()`), or `None` for NaN — NaN compares false against every
/// bound, so without the explicit check it would silently land in the
/// overflow bucket.
fn bucket_index(bounds: &[f64], value: f64) -> Option<usize> {
    if value.is_nan() {
        return None;
    }
    Some(bounds.iter().position(|&b| value <= b).unwrap_or(bounds.len()))
}

/// A fixed-bucket histogram: bucket bounds are set at creation and never
/// change, so two runs that observe the same values produce identical
/// bucket counts regardless of observation order.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramState>);

impl Histogram {
    /// Records one observation. A no-op when telemetry is disabled. NaN
    /// observations are counted in the dedicated `nan` field of the
    /// snapshot, never in a value bucket.
    pub fn observe(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        match bucket_index(&self.0.bounds, value) {
            Some(idx) => self.0.counts[idx].fetch_add(1, Ordering::Relaxed),
            None => self.0.nan.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Current state as a serialisable snapshot.
    pub fn read(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            nan: self.0.nan.load(Ordering::Relaxed),
        }
    }
}

/// Serialisable state of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one entry per bound plus a trailing overflow
    /// bucket.
    pub counts: Vec<u64>,
    /// NaN observations (kept out of the value buckets — see
    /// [`Histogram::observe`]).
    pub nan: u64,
}

impl HistogramSnapshot {
    /// Empty snapshot with the given ascending upper bucket `bounds`.
    /// Usable as a standalone per-entity accumulator (e.g. a per-device
    /// margin histogram) outside the process-global registry.
    ///
    /// # Panics
    /// Panics if `bounds` is not strictly ascending.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            nan: 0,
        }
    }

    /// Records one observation directly into the snapshot (same bucket
    /// rule as [`Histogram::observe`], including the NaN field). Not gated
    /// on the kill switch — callers own that decision.
    pub fn record(&mut self, value: f64) {
        match bucket_index(&self.bounds, value) {
            Some(idx) => self.counts[idx] += 1,
            None => self.nan += 1,
        }
    }

    /// Total observations across all buckets (NaN observations included).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.nan
    }

    /// Bucket-wise merge with another snapshot of the **same bounds**:
    /// counts and NaN totals add element-wise. Returns `None` when the
    /// bounds differ (merging histograms of different shapes would silently
    /// misfile counts). Commutative and associative — the fleet rollup
    /// depends on both.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return None;
        }
        Some(HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            nan: self.nan + other.nan,
        })
    }

    /// Bucket-wise difference against an earlier `baseline` of the **same
    /// bounds**: the observations recorded since the baseline was taken.
    /// The inverse of [`HistogramSnapshot::merge`] —
    /// `baseline.merge(&current.diff(&baseline)?) == current` — which is
    /// what makes windowed delta uploads sum back to the full-history
    /// rollup (see `docs/SCALING.md`). Returns `None` when the bounds
    /// differ or any baseline bucket exceeds the current one (the
    /// "baseline" is not actually a prefix of this history).
    #[must_use]
    pub fn diff(&self, baseline: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        if self.bounds != baseline.bounds
            || self.counts.len() != baseline.counts.len()
            || self.nan < baseline.nan
        {
            return None;
        }
        let counts = self
            .counts
            .iter()
            .zip(&baseline.counts)
            .map(|(a, b)| a.checked_sub(*b))
            .collect::<Option<Vec<u64>>>()?;
        Some(HistogramSnapshot { bounds: self.bounds.clone(), counts, nan: self.nan - baseline.nan })
    }
}

/// Per-kernel dispatch statistics (from [`crate::work`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel invocations dispatched.
    pub dispatches: u64,
    /// Approximate floating-point operations across those dispatches.
    pub flops: u64,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<Mutex<GaugeState>>>,
    histograms: BTreeMap<String, Arc<HistogramState>>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(RegistryInner::default()))
}

/// Looks up (or creates) the counter `name`.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().expect("registry lock poisoned");
    let cell = reg.counters.entry(name.to_string()).or_default();
    Counter(Arc::clone(cell))
}

/// Looks up (or creates) the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().expect("registry lock poisoned");
    let cell = reg.gauges.entry(name.to_string()).or_default();
    Gauge(Arc::clone(cell))
}

/// Looks up (or creates) the histogram `name` with the given ascending
/// upper bucket `bounds`. An existing histogram keeps its original bounds;
/// `bounds` is only used on first creation.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram bounds must be strictly ascending"
    );
    let mut reg = registry().lock().expect("registry lock poisoned");
    let cell = reg.histograms.entry(name.to_string()).or_insert_with(|| {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Arc::new(HistogramState { bounds: bounds.to_vec(), counts, nan: AtomicU64::new(0) })
    });
    Histogram(Arc::clone(cell))
}

/// A byte-stable, serialisable view of every metric, kernel statistic and
/// finished span. Sections are ordered by name; serialising the same
/// recorded state twice yields identical bytes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Whether telemetry was enabled when the snapshot was taken. When
    /// `false`, every other section is empty (the kill-switch contract).
    pub enabled: bool,
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Tensor kernel dispatch statistics by kernel name.
    pub kernels: BTreeMap<String, KernelStats>,
    /// Finished root spans, in completion order.
    pub spans: Vec<crate::span::SpanNode>,
}

impl Snapshot {
    /// Counters whose name starts with `prefix`, in name order — e.g.
    /// `counters_with_prefix("fleet.")` for a fleet-wide telemetry view.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// The increment recorded since an earlier `baseline` snapshot of the
    /// same source — the payload of a **windowed telemetry upload** (see
    /// `docs/SCALING.md`):
    ///
    /// * **counters** — current minus baseline; unchanged counters are
    ///   omitted entirely, which is what makes deltas small on the wire.
    ///   Counters are monotone, so the subtraction never wraps (a counter
    ///   below its baseline would mean the snapshots came from different
    ///   sources; the delta clamps at 0 rather than panicking mid-upload);
    /// * **histograms** — bucket-wise [`HistogramSnapshot::diff`];
    ///   unchanged histograms are omitted, and a bounds mismatch falls
    ///   back to shipping the current histogram whole;
    /// * **gauges** — shipped as-is (a gauge is a point-in-time value, not
    ///   an accumulator: the rollup's last-write-wins merge needs the
    ///   current reading, and "current minus baseline" would be
    ///   meaningless);
    /// * **kernels / spans** — not included; per-entity snapshots (e.g.
    ///   per-device telemetry) never populate them.
    ///
    /// Summing every delta of a source at the receiver reproduces the
    /// source's full-history counters and histograms exactly — the
    /// conservation property `tests/fleet_props.rs` checks.
    #[must_use]
    pub fn delta_since(&self, baseline: &Snapshot) -> Snapshot {
        let mut delta = Snapshot { enabled: self.enabled, ..Default::default() };
        for (name, value) in &self.counters {
            let before = baseline.counters.get(name).copied().unwrap_or(0);
            let inc = value.saturating_sub(before);
            if inc > 0 {
                delta.counters.insert(name.clone(), inc);
            }
        }
        for (name, histogram) in &self.histograms {
            let inc = match baseline.histograms.get(name) {
                Some(before) => histogram.diff(before).unwrap_or_else(|| histogram.clone()),
                None => histogram.clone(),
            };
            if inc.total() > 0 {
                delta.histograms.insert(name.clone(), inc);
            }
        }
        delta.gauges = self.gauges.clone();
        delta
    }
}

/// Captures the current state of the registry, the kernel work counters
/// and the finished spans. Returns an all-empty snapshot (with
/// `enabled: false`) when the kill switch is off.
pub fn snapshot() -> Snapshot {
    if !crate::enabled() {
        return Snapshot::default();
    }
    let reg = registry().lock().expect("registry lock poisoned");
    let counters = reg
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = reg
        .gauges
        .iter()
        .map(|(k, v)| {
            let s = v.lock().expect("gauge lock poisoned");
            (k.clone(), GaugeSnapshot { last: s.last, min: s.min, max: s.max, count: s.count })
        })
        .collect();
    let histograms = reg
        .histograms
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                HistogramSnapshot {
                    bounds: v.bounds.clone(),
                    counts: v.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                    nan: v.nan.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    drop(reg);
    let kernels = work::kernel_totals()
        .into_iter()
        .filter(|(_, dispatches, _)| *dispatches > 0)
        .map(|(name, dispatches, flops)| (name.to_string(), KernelStats { dispatches, flops }))
        .collect();
    Snapshot {
        enabled: true,
        counters,
        gauges,
        histograms,
        kernels,
        spans: crate::span::finished(),
    }
}

/// Clears every metric, the kernel work totals, the span log and the span
/// sequence counter. Call at the start of an instrumented run so the
/// snapshot covers exactly that run.
pub fn reset() {
    let mut reg = registry().lock().expect("registry lock poisoned");
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
    drop(reg);
    work::reset_globals();
    crate::span::reset();
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Serialises registry-global tests (they share process state).
    pub(crate) static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        reset();
        counter("t.a").inc();
        counter("t.a").add(4);
        counter("t.b").inc();
        let snap = snapshot();
        assert_eq!(snap.counters["t.a"], 5);
        assert_eq!(snap.counters["t.b"], 1);
        reset();
        crate::set_enabled(saved);
    }

    #[test]
    fn gauge_tracks_min_max_last() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        reset();
        let g = gauge("t.g");
        g.set(2.0);
        g.set(-1.0);
        g.set(0.5);
        let s = g.read();
        assert_eq!(s.last, 0.5);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
        reset();
        crate::set_enabled(saved);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        reset();
        let h = histogram("t.h", &[1.0, 10.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (inclusive upper bound)
        h.observe(5.0); // bucket 1
        h.observe(99.0); // overflow
        let s = h.read();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.total(), 4);
        reset();
        crate::set_enabled(saved);
    }

    #[test]
    fn disabled_records_nothing_and_snapshot_is_empty() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        reset();
        let c = counter("t.off");
        crate::set_enabled(false);
        c.inc();
        gauge("t.off.g").set(1.0);
        histogram("t.off.h", &[1.0]).observe(0.5);
        let snap = snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty() && snap.gauges.is_empty());
        crate::set_enabled(true);
        assert_eq!(c.get(), 0, "disabled counter must not move");
        reset();
        crate::set_enabled(saved);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        reset();
        counter("t.rt.c").add(7);
        gauge("t.rt.g").set(0.125);
        histogram("t.rt.h", &[0.5, 1.5]).observe(1.0);
        {
            let _outer = crate::span("t.rt.outer");
            let _inner = crate::span("t.rt.inner");
        }
        let snap = snapshot();
        let json = serde_json::to_string(&snap).expect("serialise");
        let back: Snapshot = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, snap);
        reset();
        crate::set_enabled(saved);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        histogram("t.bad", &[2.0, 1.0]);
    }

    /// Regression: NaN used to compare false against every bound and land
    /// in the overflow bucket, indistinguishable from a huge value.
    #[test]
    fn histogram_counts_nan_separately_from_overflow() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        reset();
        let h = histogram("t.nan", &[1.0, 10.0]);
        h.observe(f64::NAN);
        h.observe(99.0); // genuine overflow
        h.observe(f64::INFINITY); // also genuine overflow — +Inf is a value
        h.observe(f64::NAN);
        let s = h.read();
        assert_eq!(s.counts, vec![0, 0, 2], "NaN must not inflate the overflow bucket");
        assert_eq!(s.nan, 2);
        assert_eq!(s.total(), 4);
        let snap = snapshot();
        assert_eq!(snap.histograms["t.nan"].nan, 2, "nan field must survive snapshot()");
        reset();
        crate::set_enabled(saved);
    }

    #[test]
    fn standalone_snapshot_records_like_a_histogram() {
        let mut h = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        h.record(0.5);
        h.record(1.0);
        h.record(5.0);
        h.record(99.0);
        h.record(f64::NAN);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.nan, 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_merge_is_commutative_and_associative() {
        let mut a = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        let mut b = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        let mut c = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        for v in [0.5, 3.0, 99.0, f64::NAN] {
            a.record(v);
        }
        for v in [1.0, 1.0, 42.0] {
            b.record(v);
        }
        for v in [f64::NAN, 0.25] {
            c.record(v);
        }
        let ab = a.merge(&b).expect("same bounds");
        let ba = b.merge(&a).expect("same bounds");
        assert_eq!(ab, ba, "merge must be commutative");
        let ab_c = ab.merge(&c).expect("same bounds");
        let a_bc = a.merge(&b.merge(&c).expect("same bounds")).expect("same bounds");
        assert_eq!(ab_c, a_bc, "merge must be associative");
        assert_eq!(ab_c.total(), a.total() + b.total() + c.total());
        assert_eq!(ab_c.nan, 2);
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let a = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        let b = HistogramSnapshot::with_bounds(&[1.0, 20.0]);
        assert!(a.merge(&b).is_none(), "different bounds must not merge");
    }

    #[test]
    fn histogram_diff_inverts_merge() {
        let mut baseline = HistogramSnapshot::with_bounds(&[1.0, 10.0]);
        for v in [0.5, 3.0, f64::NAN] {
            baseline.record(v);
        }
        let mut current = baseline.clone();
        for v in [0.25, 42.0, f64::NAN] {
            current.record(v);
        }
        let delta = current.diff(&baseline).expect("same bounds, monotone");
        assert_eq!(delta.counts, vec![1, 0, 1]);
        assert_eq!(delta.nan, 1);
        assert_eq!(baseline.merge(&delta).expect("merge"), current, "merge must invert diff");
        // Rejections: mismatched bounds, or a "baseline" that is ahead.
        assert!(current.diff(&HistogramSnapshot::with_bounds(&[2.0])).is_none());
        assert!(baseline.diff(&current).is_none(), "baseline ahead of current must not diff");
    }

    #[test]
    fn snapshot_delta_since_ships_increments_only() {
        let mut before = Snapshot { enabled: true, ..Default::default() };
        before.counters.insert("edge.inference".into(), 5);
        before.counters.insert("edge.deployed".into(), 1);
        let mut h0 = HistogramSnapshot::with_bounds(&[1.0]);
        h0.record(0.5);
        before.histograms.insert("quality.margins".into(), h0);
        before
            .gauges
            .insert("edge.clock_seconds".into(), GaugeSnapshot { last: 1.0, min: 1.0, max: 1.0, count: 1 });

        let mut after = before.clone();
        after.counters.insert("edge.inference".into(), 9);
        after.counters.insert("edge.alert_raised".into(), 2);
        let mut h1 = after.histograms["quality.margins"].clone();
        h1.record(7.0);
        after.histograms.insert("quality.margins".into(), h1);
        after
            .gauges
            .insert("edge.clock_seconds".into(), GaugeSnapshot { last: 4.0, min: 1.0, max: 4.0, count: 2 });

        let delta = after.delta_since(&before);
        // Unchanged counters/histograms are omitted; increments survive.
        assert_eq!(delta.counters.get("edge.inference").copied(), Some(4));
        assert_eq!(delta.counters.get("edge.alert_raised").copied(), Some(2));
        assert!(!delta.counters.contains_key("edge.deployed"), "unchanged counter must be omitted");
        assert_eq!(delta.histograms["quality.margins"].counts, vec![0, 1]);
        // Gauges ship the current reading.
        assert_eq!(delta.gauges["edge.clock_seconds"].last, 4.0);
        // A no-op window ships an empty (counter/histogram-free) delta.
        let idle = after.delta_since(&after);
        assert!(idle.counters.is_empty() && idle.histograms.is_empty());
    }

    #[test]
    fn counters_with_prefix_selects_namespace() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        reset();
        counter("fleet.sessions").add(3);
        counter("fleet.windows_served").add(40);
        counter("fleeting").inc(); // shares a prefix string, not the dot namespace
        counter("edge.inference").inc();
        let snap = snapshot();
        let fleet: Vec<(&str, u64)> = snap.counters_with_prefix("fleet.").collect();
        assert_eq!(fleet, vec![("fleet.sessions", 3), ("fleet.windows_served", 40)]);
        assert_eq!(snap.counters_with_prefix("nope.").count(), 0);
        reset();
        crate::set_enabled(saved);
    }
}
