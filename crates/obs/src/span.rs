//! Scoped trace spans with parent/child nesting.
//!
//! A span is opened with [`span`] and closed when its guard drops; spans
//! opened while another span is open on the same thread become its
//! children. Spans are **never stamped with host time**. Each records:
//!
//! * `seq_open` / `seq_close` — ticks of a global logical clock (one tick
//!   per span open or close), which totally order the span tree;
//! * `flops` — the kernel work (see [`crate::work`]) dispatched by this
//!   thread while the span was open, a deterministic cost measure;
//! * optional named `f64` attributes (e.g. the modeled device seconds a
//!   `pilote-magneto` update charged to the virtual clock).
//!
//! Spans are intended for orchestration code (training phases, edge
//! updates), which in this workspace runs on a single thread per
//! deployment; kernel worker threads never open spans. Under that
//! discipline the span tree is byte-identical across runs and thread
//! counts.
//!
//! ```
//! use pilote_obs as obs;
//! obs::set_enabled(true);
//! obs::reset();
//! {
//!     let update = obs::span("update");
//!     update.annotate("samples", 25.0);
//!     let _train = obs::span("train");
//! } // guards drop: "train" nests under "update"
//! let spans = obs::snapshot().spans;
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].children[0].name, "train");
//! obs::reset();
//! ```

use crate::work;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One finished span (and, recursively, its finished children).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Logical-clock tick at open.
    pub seq_open: u64,
    /// Logical-clock tick at close.
    pub seq_close: u64,
    /// Kernel flops dispatched by the opening thread while the span was
    /// open (includes children).
    pub flops: u64,
    /// Named numeric attributes.
    pub attrs: BTreeMap<String, f64>,
    /// Child spans, in completion order.
    pub children: Vec<SpanNode>,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static FINISHED: Mutex<Vec<SpanNode>> = Mutex::new(Vec::new());

thread_local! {
    /// Open spans on this thread, outermost first. While open, a node's
    /// `flops` field holds the thread-flop reading at open time.
    static STACK: RefCell<Vec<SpanNode>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span; it closes (and is recorded) when the returned guard
/// drops. Returns an inert guard when telemetry is disabled.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: false };
    }
    let node = SpanNode {
        name: name.to_string(),
        seq_open: SEQ.fetch_add(1, Ordering::Relaxed),
        seq_close: 0,
        flops: work::thread_flops(),
        attrs: BTreeMap::new(),
        children: Vec::new(),
    };
    STACK.with(|s| s.borrow_mut().push(node));
    SpanGuard { active: true }
}

/// Closes its span on drop. `!Send` by construction (spans belong to the
/// thread that opened them).
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// Attaches a named numeric attribute to the innermost open span on
    /// this thread (this guard's span, when called before any child span
    /// is opened).
    pub fn annotate(&self, key: &str, value: f64) {
        if !self.active {
            return;
        }
        STACK.with(|s| {
            if let Some(top) = s.borrow_mut().last_mut() {
                top.attrs.insert(key.to_string(), value);
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let Some(mut node) = stack.pop() else {
                return; // reset() cleared the stack mid-span
            };
            node.seq_close = SEQ.fetch_add(1, Ordering::Relaxed);
            node.flops = work::thread_flops().wrapping_sub(node.flops);
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => FINISHED.lock().expect("span log poisoned").push(node),
            }
        });
    }
}

/// Finished root spans recorded so far, in completion order.
pub fn finished() -> Vec<SpanNode> {
    FINISHED.lock().expect("span log poisoned").clone()
}

/// Clears the finished-span log, the calling thread's open-span stack and
/// the logical clock. Called by [`crate::reset`].
pub(crate) fn reset() {
    FINISHED.lock().expect("span log poisoned").clear();
    STACK.with(|s| s.borrow_mut().clear());
    SEQ.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_sequence_numbers() {
        let _guard = crate::registry::tests::LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        crate::reset();
        {
            let outer = span("outer");
            outer.annotate("k", 2.5);
            {
                let _inner = span("inner");
                work::record(work::KernelKind::MatMul, 64);
            }
            {
                let _second = span("second");
            }
        }
        let roots = finished();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.attrs["k"], 2.5);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[1].name, "second");
        // The logical clock orders opens/closes: outer opens first, closes
        // last; the span's work includes its children's.
        assert_eq!(outer.seq_open, 0);
        assert!(outer.seq_close > outer.children[1].seq_close);
        assert_eq!(outer.children[0].flops, 64);
        assert!(outer.flops >= 64);
        crate::reset();
        crate::set_enabled(saved);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::registry::tests::LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = crate::enabled();
        crate::set_enabled(true);
        crate::reset();
        crate::set_enabled(false);
        {
            let g = span("ghost");
            g.annotate("x", 1.0);
        }
        crate::set_enabled(true);
        assert!(finished().is_empty());
        crate::reset();
        crate::set_enabled(saved);
    }

    #[test]
    fn span_node_serde_round_trip() {
        let node = SpanNode {
            name: "n".into(),
            seq_open: 3,
            seq_close: 9,
            flops: 1234,
            attrs: [("device_seconds".to_string(), 0.25)].into_iter().collect(),
            children: vec![SpanNode {
                name: "c".into(),
                seq_open: 4,
                seq_close: 5,
                flops: 10,
                attrs: BTreeMap::new(),
                children: Vec::new(),
            }],
        };
        let json = serde_json::to_string(&node).expect("serialise");
        let back: SpanNode = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, node);
    }
}
