//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build container for this repository has no network access and no
//! crates-io mirror, so the real `serde` cannot be fetched. This crate
//! implements the *subset* of serde the workspace actually uses — derived
//! `Serialize`/`Deserialize` on plain structs and enums, round-tripped
//! through JSON by the sibling `serde_json` stand-in — with the same import
//! paths (`serde::{Serialize, Deserialize}`, `features = ["derive"]`) so
//! that swapping the real crates back in later is a one-line change in the
//! workspace manifest.
//!
//! Instead of serde's visitor-based data model, this implementation routes
//! everything through a single concrete [`Value`] tree (the JSON data
//! model). That is a deliberate simplification: every serialization
//! consumer in this workspace is JSON.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value — the data model every `Serialize`/`Deserialize`
/// implementation in this workspace maps through.
///
/// Objects preserve insertion order (they are a `Vec` of pairs, not a map),
/// which keeps emitted JSON stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number. Integers and floats are kept distinct so that `42`
/// round-trips as `42`, not `42.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float. Non-finite floats serialize as `null` (matching
    /// serde_json's default behaviour).
    Float(f64),
}

impl Value {
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (ordered key/value pairs), if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup: `get("key")` on objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: what was expected, and a rendering of what was
/// found instead.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// Type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError { message: format!("expected {what}, got {kind}") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the JSON data model. The stand-in for serde's
/// `Serialize` trait.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_json_value(&self) -> Value;
}

/// Conversion from the JSON data model. The stand-in for serde's
/// `Deserialize` trait.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        if self.is_finite() {
            // Route through the shortest decimal representation of the f32
            // so `1.1f32` serializes as `1.1`, not `1.100000023841858`; the
            // parsed f64 still casts back to the identical f32.
            let shortest: f64 = format!("{self}").parse().unwrap_or(*self as f64);
            Value::Number(Number::Float(shortest))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        if matches!(value, Value::Null) {
            return Ok(f32::NAN);
        }
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::expected("f32", value))
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        if matches!(value, Value::Null) {
            return Ok(f64::NAN);
        }
        value.as_f64().ok_or_else(|| DeError::expected("f64", value))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        let s = value.as_str().ok_or_else(|| DeError::expected("char", value))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_json_value(value)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter().map(|(k, v)| (k.to_string(), v.to_json_value())).collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($( ($($name:ident : $idx:tt),+) ),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("tuple (array)", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        T::from_json_value(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Helper for derived code: member lookup that produces `Null` for missing
/// optional fields instead of an error.
pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
}
