//! Derive macros for the offline vendored `serde` stand-in.
//!
//! The real `serde_derive` leans on `syn`/`quote`, neither of which is
//! available in this offline build environment, so the item is parsed by
//! hand from the raw [`proc_macro::TokenStream`]. The supported grammar is
//! exactly what this workspace uses:
//!
//! * non-generic `struct` with named fields,
//! * non-generic tuple structs (newtype structs serialize transparently),
//! * non-generic `enum` with unit, named-field and tuple variants
//!   (externally tagged, like serde's default representation),
//! * `#[serde(...)]` attributes are **not** supported and are rejected
//!   loudly rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field-less view of the deriving item.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` (the vendored stand-in trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inner = if *arity == 1 {
                // Newtype structs serialize transparently, like serde.
                "::serde::Serialize::to_json_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{ {inner} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::String(::std::string::String::from(\"{vname}\"))"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_json_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Object(::std::vec![{}]))])",
                                pairs.join(", ")
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_json_value(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    elems.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({}) => \
                                 ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), {inner})])",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    body.parse().expect("derive(Serialize): generated code must parse")
}

/// Derives `serde::Deserialize` (the vendored stand-in trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(\
                             ::serde::field(__obj, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"struct {name}\", __v))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inner = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_json_value(__v)?))"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::DeError::expected(\"tuple struct {name}\", __v))?;\n\
                     if __arr.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"wrong tuple arity for {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{ {inner} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0})",
                        v.name
                    )
                })
                .collect();
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::String(__s) = __v {{\n\
                         return match __s.as_str() {{\n\
                             {},\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::custom(::std::format!(\
                                     \"unknown {name} variant {{__other}}\"))),\n\
                         }};\n\
                     }}",
                    unit_arms.join(",\n")
                )
            };
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_json_value(\
                                             ::serde::field(__fields, \"{f}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __fields = __inner.as_object().ok_or_else(|| \
                                         ::serde::DeError::expected(\
                                             \"fields of {name}::{vname}\", __inner))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Tuple(arity) => {
                            if *arity == 1 {
                                Some(format!(
                                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::from_json_value(__inner)?))"
                                ))
                            } else {
                                let elems: Vec<String> = (0..*arity)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::from_json_value(&__arr[{i}])?"
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vname}\" => {{\n\
                                         let __arr = __inner.as_array().ok_or_else(|| \
                                             ::serde::DeError::expected(\
                                                 \"fields of {name}::{vname}\", __inner))?;\n\
                                         if __arr.len() != {arity} {{\n\
                                             return ::std::result::Result::Err(\
                                                 ::serde::DeError::custom(\
                                                     \"wrong arity for {name}::{vname}\"));\n\
                                         }}\n\
                                         ::std::result::Result::Ok({name}::{vname}({}))\n\
                                     }}",
                                    elems.join(", ")
                                ))
                            }
                        }
                    }
                })
                .collect();
            let data_match = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                         if __obj.len() == 1 {{\n\
                             let (__tag, __inner) = &__obj[0];\n\
                             return match __tag.as_str() {{\n\
                                 {},\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError::custom(::std::format!(\
                                         \"unknown {name} variant {{__other}}\"))),\n\
                             }};\n\
                         }}\n\
                     }}",
                    data_arms.join(",\n")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {unit_match}\n\
                         {data_match}\n\
                         ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"enum {name}\", __v))\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("derive(Deserialize): generated code must parse")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (doc comments arrive as `#[doc = ...]`) and
    // visibility. Reject `#[serde(...)]`, which this stand-in cannot honour.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    reject_serde_attr(&g.stream());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` / `pub(super)` carry a parenthesised group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stand-in does not support generic type `{name}`");
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde derive: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn reject_serde_attr(attr: &TokenStream) {
    if let Some(TokenTree::Ident(id)) = attr.clone().into_iter().next() {
        if id.to_string() == "serde" {
            panic!("the vendored serde stand-in does not support #[serde(...)] attributes");
        }
    }
}

/// Parses `a: T, pub b: U<V, W>, ...` into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        reject_serde_attr(&g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field_name) = tree else {
            panic!("serde derive: expected field name, got {tree:?}");
        };
        fields.push(field_name.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tree in tokens.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts the types in a tuple-struct body `(T, U, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_token = false;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

/// Parses enum variants: `Unit, Named { a: T }, Tuple(U, V), ...`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (`#[default]`, doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() != '#' {
                break;
            }
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.next() {
                reject_serde_attr(&g.stream());
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(vname) = tree else {
            panic!("serde derive: expected variant name, got {tree:?}");
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name: vname.to_string(), kind });
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        let mut depth = 0i32;
        while let Some(tree) = tokens.peek() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
            tokens.next();
        }
    }
    variants
}
