//! Offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Implements the subset this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`] and the [`json!`] macro —
//! over the JSON data model defined by the vendored `serde` crate. The
//! emitted JSON is plain RFC 8259; files written by this crate are consumed
//! by `scripts/fill_experiments.py` with the stock `json` module.

use std::fmt;

pub use serde::{Number, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Reconstructs a deserializable value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_json_value(value).map_err(Error::from)
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::from_json_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                let s = format!("{v}");
                out.push_str(&s);
                // `{}` omits the decimal point for integral floats; keep
                // the float-ness visible so parsers round-trip the type.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal, interpolating expressions
/// through `serde::Serialize` — a working subset of `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        // The muncher necessarily builds by pushing; clippy cannot see that
        // the pushes come from a token-by-token expansion.
        #[allow(clippy::vec_init_then_push)]
        {
            let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_object!(__obj () $($body)+);
            $crate::Value::Object(__obj)
        }
    }};
    ([ $($body:tt)+ ]) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_array!(__arr () $($body)+);
            $crate::Value::Array(__arr)
        }
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for `json!` object bodies. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($obj:ident ()) => {};
    ($obj:ident () $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($obj $key () $($rest)*)
    };
}

/// Internal muncher for one `json!` object value. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    ($obj:ident $key:literal ($($val:tt)*) , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!($($val)*)));
        $crate::json_object!($obj () $($rest)*);
    };
    ($obj:ident $key:literal ($($val:tt)*)) => {
        $obj.push(($key.to_string(), $crate::json!($($val)*)));
    };
    ($obj:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($obj $key ($($val)* $next) $($rest)*)
    };
}

/// Internal muncher for `json!` array bodies. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ($arr:ident ()) => {};
    ($arr:ident ($($val:tt)+)) => {
        $arr.push($crate::json!($($val)+));
    };
    ($arr:ident ($($val:tt)+) , $($rest:tt)*) => {
        $arr.push($crate::json!($($val)+));
        $crate::json_array!($arr () $($rest)*);
    };
    ($arr:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array!($arr ($($val)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x"));
    }

    #[test]
    fn json_macro_forms() {
        let n = 3usize;
        let v = json!({"name": "x", "count": n, "nested": {"ok": true}, "list": [1, n]});
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["nested"]["ok"].as_bool(), Some(true));
        assert_eq!(v["list"][1].as_u64(), Some(3));
        let arr = json!([json!({"a": 1}), json!({"a": 2})]);
        assert_eq!(arr[1]["a"].as_u64(), Some(2));
        let from_expr = json!((0..3).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(from_expr[2].as_u64(), Some(4));
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = json!({"rows": [{"x": 1.5}, {"x": -2.0}], "empty": {}, "none": null});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let v2: Value = from_str(&text).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn float_formatting_keeps_type() {
        let s = to_string(&json!(2.0f64)).unwrap();
        assert_eq!(s, "2.0");
        let s = to_string(&json!(7u64)).unwrap();
        assert_eq!(s, "7");
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}
