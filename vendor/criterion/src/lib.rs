//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! Implements the harness subset this workspace's benches use:
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`], benchmark
//! groups with [`Throughput`], [`BenchmarkId`], and `Bencher::iter`.
//!
//! Methodology (simpler than real criterion, but honest): after a warm-up
//! phase, each benchmark runs `sample_size` samples. Each sample executes
//! as many iterations as fit a fixed per-sample slice of
//! `measurement_time`, and the reported figures are the median, minimum
//! and mean per-iteration wall-clock times across samples. There is no
//! outlier rejection or bootstrap; on a quiet machine the median is within
//! noise of real criterion's point estimate.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How throughput is derived from per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Identifier of a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id made of the parameter rendering alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark path (`group/id`).
    pub id: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Minimum per-iteration time.
    pub min: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

/// The benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Results recorded so far (available to custom reporters).
    pub results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Accepted for CLI compatibility; filtering flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample = run_benchmark(
            id.to_string(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            None,
            f,
        );
        self.results.push(sample);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate figures for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample = run_benchmark(
            full,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.throughput,
            f,
        );
        self.criterion.results.push(sample);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; results were reported live).
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    id: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) -> Sample {
    // Warm-up: run single iterations until the budget is spent, and use
    // the observed time to size measurement samples.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }

    let slice = measurement / sample_size as u32;
    let iters_per_sample =
        (slice.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(sample_size);
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        total_iters += iters_per_sample;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = times[times.len() / 2];
    let min = times[0];
    let mean = times.iter().sum::<f64>() / times.len() as f64;

    let rate = |per_iter_secs: f64| -> String {
        match throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.3} Melem/s)", n as f64 / per_iter_secs / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.3} MiB/s)", n as f64 / per_iter_secs / (1024.0 * 1024.0))
            }
            None => String::new(),
        }
    };
    println!(
        "{id:<50} median {}{}  min {}  mean {}  ({} iters)",
        fmt_time(median),
        rate(median),
        fmt_time(min),
        fmt_time(mean),
        total_iters,
    );

    Sample {
        id,
        median: Duration::from_secs_f64(median),
        min: Duration::from_secs_f64(min),
        mean: Duration::from_secs_f64(mean),
        iterations: total_iters,
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            // black_box the range bound so the sum cannot be const-folded
            // to a sub-nanosecond no-op (which rounds the median Duration
            // down to zero and makes the assertion below flaky).
            b.iter(|| (0..black_box(100u64)).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "demo/sum");
        assert!(c.results[0].median > Duration::ZERO);
    }
}
