//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `in`-range strategies on
//! integers and floats, `prop::sample::select`, and the `prop_assert*`
//! macros. Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (every generated binding is included) but is not minimised.
//! * **Deterministic** — the RNG seed is derived from the test-function
//!   name, so failures always reproduce. There is no failure persistence
//!   file because there is no nondeterminism to persist.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Test-runner plumbing, mirroring `proptest::test_runner` paths.
pub mod test_runner {
    pub use super::ProptestConfig;

    /// SplitMix64-based RNG used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG seeded from a test name.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // Multiply-shift rejection-free mapping; bias is negligible for
            // the bounds used in tests.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategy trait and implementations, mirroring `proptest::strategy`.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values. The stand-in has no shrinking, so a
    /// strategy is just a sampling function.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range");
                    (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    /// Strategy produced by [`crate::prop::sample::select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        pub(crate) options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Strategy produced by [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Constant strategy (`Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Namespaced strategies, mirroring `proptest::prop` / `proptest::sample`.
pub mod sample {
    use super::strategy::Select;

    /// Uniformly selects one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// A `Vec` strategy with element strategy `element` and a length drawn
    /// from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The `prop` facade used via `use proptest::prelude::*`.
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use super::prop;
    pub use super::sample;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::TestRng;
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(binding in strategy, ...)` body
/// runs [`ProptestConfig::cases`] times with fresh random bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($binding:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $binding =
                    $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)*
                let __inputs = format!(
                    concat!("case {} of ", stringify!($name), ":"
                            $(, " ", stringify!($binding), "={:?}")*),
                    __case $(, $binding)*
                );
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(__panic) = __result {
                    eprintln!("proptest failure: {__inputs}");
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -5i64..5, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn select_picks_member(v in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2usize, 4, 8].contains(&v));
        }

        #[test]
        fn vec_strategy_obeys_len(v in prop::collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = TestRng::deterministic("seed-name");
        let mut b = TestRng::deterministic("seed-name");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
