//! Integration of the MAGNETO platform crate with the whole stack:
//! cloud → deployment → edge streaming → on-device update → federation.

use pilote::har_data::features::extract_batch;
use pilote::magneto::{EventKind, FederatedCoordinator};
use pilote::nn::Layer;
use pilote::prelude::*;

fn platform() -> (CloudServer, Simulator, pilote::har_data::preprocess::Normalizer) {
    let mut sim = Simulator::with_seed(404);
    let (corpus, norm) = generate_features(
        &mut sim,
        &[
            (Activity::Still, 60),
            (Activity::Walk, 60),
            (Activity::Run, 60),
        ],
    )
    .expect("simulate");
    let server = CloudServer::new(corpus, norm.clone(), PiloteConfig::fast_test(404));
    (server, sim, norm)
}

#[test]
fn cloud_to_edge_lifecycle() {
    let (server, mut sim, norm) = platform();
    let old = [Activity::Still.label(), Activity::Walk.label()];
    let (deployment, _) = server.pretrain_and_package(&old, 15).expect("package");

    let mut device = EdgeDevice::install(
        DeviceProfile::flagship_phone(),
        &deployment,
        &LinkModel::cellular_4g(),
    )
    .expect("install");
    assert_eq!(device.known_classes().len(), 2);

    // Stream a known activity and check recognition.
    let session = sim.session(Activity::Walk, 6);
    let outcomes = device.stream(&session).expect("stream");
    assert_eq!(outcomes.len(), 6);

    // Learn Run on-device.
    let raw = sim.raw_dataset(&[(Activity::Run, 20)]);
    let features = norm.transform(&extract_batch(&raw).expect("feat")).expect("norm");
    for i in 0..features.rows() {
        device.label_sample(Activity::Run.label(), Tensor::vector(features.row(i)));
    }
    device.update(15).expect("update");
    assert_eq!(device.known_classes().len(), 3);
    assert_eq!(device.log().update_count(), 1);
    assert!(device.log().now() > 0.0);
}

#[test]
fn federated_round_aligns_devices_without_sharing_data() {
    let (server, _, _) = platform();
    let old = [Activity::Still.label(), Activity::Walk.label()];
    let (deployment, _) = server.pretrain_and_package(&old, 10).expect("package");
    let link = LinkModel::wifi();
    let mut a = EdgeDevice::install(DeviceProfile::flagship_phone(), &deployment, &link)
        .expect("install a");
    let mut b =
        EdgeDevice::install(DeviceProfile::budget_phone(), &deployment, &link).expect("install b");

    // Perturb device A's model so the two diverge.
    for (p, _) in a.model_mut().net_mut().layers_mut().params_and_grads() {
        p.map_inplace(|v| v * 1.05);
    }

    let mut coordinator = FederatedCoordinator::new();
    coordinator.run_round(&mut [&mut a, &mut b]).expect("round");
    assert_eq!(coordinator.rounds(), 1);

    // After averaging, both devices embed identically.
    let mut rng = Rng64::new(7);
    let probe = Tensor::randn([3, FEATURE_DIM], 0.0, 1.0, &mut rng);
    let ea = a.model_mut().embed(&probe);
    let eb = b.model_mut().embed(&probe);
    assert!(ea.max_abs_diff(&eb).unwrap() < 1e-5, "devices diverge after FedAvg");

    // Both logs record the round.
    for d in [&a, &b] {
        assert!(d
            .log()
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::FederatedRound { participants: 2 })));
    }
}

#[test]
fn deployment_transfer_cost_is_one_time() {
    let (server, _, _) = platform();
    let (deployment, _) = server
        .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 10)
        .expect("package");
    let link = LinkModel::weak_cellular();
    let device = EdgeDevice::install(DeviceProfile::wearable(), &deployment, &link)
        .expect("install");
    // The log's clock starts at the (one-time) download latency.
    let bootstrap = link.transfer_seconds(deployment.wire_bytes().expect("serialisable"));
    assert!((device.log().now() - bootstrap).abs() < 1e-9);
}
