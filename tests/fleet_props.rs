//! Property-based tests of the fleet serving subsystem (`docs/FLEET.md`):
//!
//! * **batched = per-window**: serving any feature batch through the
//!   prototype-cache path is bitwise identical to serving it one window at
//!   a time — labels equal, distances equal to the bit;
//! * **cache coherence**: after any interleaving of serves, incremental
//!   updates, rollbacks and federated installs, the cached classifier is
//!   never stale — serve outcomes always match an uncached classification
//!   of the live model, bitwise;
//! * **schedule determinism**: an identical fleet schedule produces
//!   identical stats and per-device event logs at any thread count;
//! * **ring-buffer conservation**: bounding the per-device event log never
//!   changes telemetry snapshots or derived counts vs. an unbounded log
//!   (evicted events fold into the running totals — `docs/SCALING.md`);
//! * **delta conservation**: windowed delta telemetry uploads summed at
//!   the cloud equal the whole-life full-snapshot rollup;
//! * **sharded serving**: [`pilote::magneto::Fleet::serve_sessions`] is
//!   bitwise identical to the serial session walk at any thread count.
//!
//! The global [`ThreadConfig`] is process-wide, so the thread-variance
//! tests serialise on [`CONFIG_LOCK`], same as `tests/parallel_props.rs`.

use pilote::har_data::features::extract_batch;
use pilote::magneto::{Deployment, TelemetryRollup};
use pilote::prelude::*;
use pilote::tensor::parallel::{self, ThreadConfig};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// One pre-trained deployment shared by every case (pre-training per case
/// would dominate the suite's runtime).
struct Fixture {
    deployment: Deployment,
    /// Normalised Run features (the class devices can be asked to learn).
    run_features: Tensor,
    /// Normalised mixed-activity features for serving.
    eval_features: Tensor,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut sim = Simulator::with_seed(31);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50), (Activity::Run, 50)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm.clone(), PiloteConfig::fast_test(5));
        let (deployment, _) = server
            .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 15)
            .expect("package");
        let run_raw = sim.raw_dataset(&[(Activity::Run, 20)]);
        let run_features =
            norm.transform(&extract_batch(&run_raw).expect("features")).expect("normalise");
        let eval_raw = sim.raw_dataset(&[
            (Activity::Still, 8),
            (Activity::Walk, 8),
            (Activity::Run, 8),
        ]);
        let eval_features =
            norm.transform(&extract_batch(&eval_raw).expect("features")).expect("normalise");
        Fixture { deployment, run_features, eval_features }
    })
}

/// Installs a fresh device from the shared deployment.
fn device() -> EdgeDevice {
    EdgeDevice::install(DeviceProfile::budget_phone(), &fixture().deployment, &LinkModel::wifi())
        .expect("install")
}

/// Labels `n` Run samples on the device.
fn label_run_samples(dev: &mut EdgeDevice, n: usize) {
    let f = &fixture().run_features;
    for i in 0..n.min(f.rows()) {
        dev.label_sample(Activity::Run.label(), Tensor::vector(f.row(i)));
    }
}

/// Asserts that serving `features` through the device's prototype cache is
/// bitwise identical to an uncached classification of its live model.
fn assert_cache_coherent(dev: &mut EdgeDevice, features: &Tensor) {
    let served = dev.serve_batch(features).expect("serve");
    let uncached = dev.model_mut().classify_batch(features).expect("classify");
    assert_eq!(served.len(), uncached.len());
    for (i, (outcome, (label, distance))) in served.iter().zip(&uncached).enumerate() {
        assert_eq!(outcome.predicted, *label, "window {i}: cached label diverged");
        assert_eq!(
            outcome.distance.to_bits(),
            distance.to_bits(),
            "window {i}: cached distance diverged"
        );
    }
}

/// A fresh 4-device fleet over mixed links from the shared deployment,
/// with an explicit per-device event-log bound (`0` = unbounded).
fn fleet_bounded(federated_every: usize, event_capacity: usize) -> pilote::magneto::Fleet {
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(4)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig {
        seed: 0xf1ee7,
        serve_chunk: 5,
        federated_every,
        update_threshold: 8,
        exemplar_budget: 15,
        event_capacity,
        ..FleetConfig::default()
    };
    Fleet::deploy(slots, &fixture().deployment, config).expect("deploy")
}

/// A fresh 4-device fleet with the default (never-evicting here) log bound.
fn fleet(federated_every: usize) -> pilote::magneto::Fleet {
    fleet_bounded(federated_every, pilote::magneto::events::DEFAULT_EVENT_CAPACITY)
}

/// Runs a small but complete fleet schedule — serves, labels that trigger
/// an update, and (per config) federated rounds — returning a canonical
/// trace: the stats JSON plus every device's event-log JSON.
fn run_schedule(federated_every: usize) -> String {
    let mut f = fleet(federated_every);
    let eval = &fixture().eval_features;
    for user in 0..6u64 {
        let start = (user as usize * 3) % (eval.rows() - 4);
        let session = eval.slice_rows(start, start + 4).expect("session");
        f.serve_session(user, &session).expect("serve");
    }
    let run = &fixture().run_features;
    for i in 0..8 {
        f.label_sample(2, Activity::Run.label(), Tensor::vector(run.row(i))).expect("label");
    }
    for user in 0..6u64 {
        let session = eval.slice_rows(0, 4).expect("session");
        f.serve_session(user, &session).expect("serve");
    }
    fleet_trace(&f)
}

/// Canonical trace of a fleet: the stats JSON plus every device's
/// event-log JSON, in device-index order.
fn fleet_trace(f: &pilote::magneto::Fleet) -> String {
    let stats = serde_json::to_string(&f.stats()).expect("stats json");
    let logs: Vec<String> = (0..f.len())
        .map(|i| serde_json::to_string(f.device(i).log()).expect("log json"))
        .collect();
    format!("{stats}\n{}", logs.join("\n"))
}

/// Serves a fixed mixed schedule — sessions, then labels that trigger one
/// incremental update, then more sessions — on `f`.
fn serve_mixed_schedule(f: &mut pilote::magneto::Fleet) {
    let eval = &fixture().eval_features;
    for user in 0..6u64 {
        let start = (user as usize * 3) % (eval.rows() - 4);
        let session = eval.slice_rows(start, start + 4).expect("session");
        f.serve_session(user, &session).expect("serve");
    }
    let run = &fixture().run_features;
    for i in 0..8 {
        f.label_sample(2, Activity::Run.label(), Tensor::vector(run.row(i))).expect("label");
    }
    for user in 0..4u64 {
        let session = eval.slice_rows(0, 4).expect("session");
        f.serve_session(user, &session).expect("serve");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Batched serving is bitwise identical to per-window serving for any
    /// sub-batch of the eval pool.
    #[test]
    fn batched_serving_equals_per_window(start in 0usize..20, len in 1usize..12) {
        let eval = &fixture().eval_features;
        let start = start % (eval.rows() - 1);
        let end = (start + len).min(eval.rows());
        let batch = eval.slice_rows(start, end).expect("slice");
        let mut batched = device();
        let mut single = device();
        let all = batched.serve_batch(&batch).expect("serve batch");
        for (i, outcome) in all.iter().enumerate() {
            let row = batch.slice_rows(i, i + 1).expect("row");
            let one = single.serve_batch(&row).expect("serve row");
            prop_assert_eq!(one.len(), 1);
            prop_assert_eq!(one[0].predicted, outcome.predicted);
            prop_assert_eq!(one[0].distance.to_bits(), outcome.distance.to_bits());
        }
    }

    /// The prototype cache is never stale: any interleaving of serves,
    /// committed updates and rollbacks keeps serve outcomes bitwise equal
    /// to uncached classification of the live model.
    #[test]
    fn cache_stays_coherent_across_model_lifecycle(ops in prop::collection::vec(0u8..3, 1..6)) {
        let mut dev = device();
        let eval = &fixture().eval_features;
        for op in ops {
            match op {
                // Serve (fills or reuses the cache).
                0 => { dev.serve_batch(eval).expect("serve"); }
                // Committed incremental update (bumps the generation).
                1 => {
                    if !dev.known_classes().contains(&Activity::Run.label()) {
                        label_run_samples(&mut dev, 10);
                        dev.update(15).expect("update");
                    }
                }
                // Failed update → exact rollback (also bumps the generation).
                _ => {
                    label_run_samples(&mut dev, 6);
                    dev.update_faulted(15, Some(pilote::core::UpdateStage::Trained))
                        .expect("faulted update");
                }
            }
            assert_cache_coherent(&mut dev, eval);
        }
    }

    /// Bounding the event log to any ring capacity changes **nothing**
    /// observable except the retained-event window: telemetry snapshots
    /// (whose counters read the running totals) and every derived count
    /// are identical to an unbounded log over the same schedule.
    #[test]
    fn bounded_event_logs_conserve_telemetry(capacity in 1usize..4) {
        let mut bounded = fleet_bounded(0, capacity);
        let mut unbounded = fleet_bounded(0, 0);
        serve_mixed_schedule(&mut bounded);
        serve_mixed_schedule(&mut unbounded);
        prop_assert_eq!(
            serde_json::to_string(&bounded.stats()).expect("stats json"),
            serde_json::to_string(&unbounded.stats()).expect("stats json")
        );
        let mut evicted = 0u64;
        for i in 0..bounded.len() {
            let b = bounded.device(i).log();
            let u = unbounded.device(i).log();
            prop_assert!(b.events().len() <= capacity, "device {} over capacity", i);
            prop_assert_eq!(b.totals(), u.totals(), "device {} totals diverged", i);
            prop_assert_eq!(b.served_count(), u.served_count());
            prop_assert_eq!(b.inference_count(), u.inference_count());
            prop_assert_eq!(b.update_count(), u.update_count());
            prop_assert_eq!(
                serde_json::to_string(&bounded.device(i).telemetry_snapshot()).expect("snap"),
                serde_json::to_string(&unbounded.device(i).telemetry_snapshot()).expect("snap"),
                "device {} telemetry diverged", i
            );
            evicted += b.evicted();
        }
        // The schedule produces more events per routed device than any
        // capacity in range, so eviction genuinely happened.
        prop_assert!(evicted > 0, "schedule never overflowed a {}-slot ring", capacity);
    }
}

/// A federated install rewrites every device's parameters in place; the
/// per-device caches must all be invalidated by the generation bump.
#[test]
fn federated_install_invalidates_every_device_cache() {
    let mut f = fleet(0);
    let eval = &fixture().eval_features;
    // Warm every cache.
    for i in 0..f.len() {
        f.device_mut(i).serve_batch(eval).expect("warm serve");
        assert_eq!(f.device(i).cache_rebuilds(), 1);
    }
    // Teach one device Run so the round actually changes parameters.
    label_run_samples(f.device_mut(0), 10);
    f.device_mut(0).update(15).expect("update");
    f.federated_round().expect("round");
    for i in 0..f.len() {
        let dev = f.device_mut(i);
        assert_cache_coherent(dev, eval);
        assert!(
            dev.cache_rebuilds() >= 2,
            "device {i}: federated install did not invalidate the cache"
        );
    }
}

/// The full fleet schedule — routing, chunked serving, updates, federated
/// rounds, virtual clocks — is bitwise identical at 1 and 4 threads.
#[test]
fn fleet_schedule_is_thread_invariant() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let saved = parallel::current();
    parallel::configure(ThreadConfig::serial());
    let serial = run_schedule(4);
    parallel::configure(ThreadConfig { num_threads: 4, min_parallel_len: 0 });
    let threaded = run_schedule(4);
    parallel::configure(saved);
    assert_eq!(serial, threaded, "fleet schedule diverged between 1 and 4 threads");
}

/// Windowed delta uploads summed at the cloud equal the whole-life
/// full-snapshot rollup for the same schedule: counters and histograms are
/// conserved exactly (gauges are point-in-time and the delta fleet's
/// clocks carry extra upload charges, so they are not compared).
#[test]
fn delta_uploads_sum_to_full_snapshot_rollup() {
    let mut delta_fleet = fleet(3);
    let mut full_fleet = fleet(3);
    let mut delta_rollup = TelemetryRollup::new();
    let eval = &fixture().eval_features;
    for window in 0..3 {
        for user in 0..4u64 {
            let start = ((window * 4 + user as usize) * 3) % (eval.rows() - 4);
            let session = eval.slice_rows(start, start + 4).expect("session");
            delta_fleet.serve_session(user, &session).expect("serve");
            full_fleet.serve_session(user, &session).expect("serve");
        }
        delta_fleet.upload_telemetry_deltas(&mut delta_rollup).expect("delta upload");
    }
    let full_rollup = full_fleet.telemetry_rollup().expect("rollup");
    if !pilote::obs::enabled() {
        assert!(delta_rollup.counters.is_empty(), "kill switch ships empty deltas");
        return;
    }
    assert_eq!(delta_rollup.counters, full_rollup.counters, "delta sums lost counter increments");
    assert_eq!(delta_rollup.histograms, full_rollup.histograms, "delta sums lost histogram buckets");
}

/// Bulk sharded serving ([`pilote::magneto::Fleet::serve_sessions`]) is
/// bitwise identical — outcomes, stats, per-device event logs, federated
/// schedule — to the serial per-session walk, at 1 and 4 threads.
#[test]
fn bulk_serving_matches_serial_walk_at_any_thread_count() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let saved = parallel::current();
    let eval = &fixture().eval_features;
    let sessions: Vec<(u64, Tensor)> = (0..10u64)
        .map(|user| {
            let start = (user as usize * 3) % (eval.rows() - 4);
            (user, eval.slice_rows(start, start + 4).expect("session"))
        })
        .collect();
    parallel::configure(ThreadConfig::serial());
    let mut reference = fleet(3);
    let mut expected = Vec::new();
    for (user, session) in &sessions {
        expected.extend(reference.serve_session(*user, session).expect("serve"));
    }
    let reference_trace = fleet_trace(&reference);
    for threads in [1usize, 4] {
        parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
        let mut f = fleet(3);
        let outcomes: Vec<_> =
            f.serve_sessions(&sessions).expect("bulk serve").into_iter().flatten().collect();
        assert_eq!(outcomes.len(), expected.len());
        for (i, (a, b)) in outcomes.iter().zip(&expected).enumerate() {
            assert_eq!(a.predicted, b.predicted, "window {i} at {threads} threads");
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "window {i} at {threads} threads"
            );
        }
        assert_eq!(
            fleet_trace(&f),
            reference_trace,
            "bulk serving diverged from the serial walk at {threads} threads"
        );
    }
    parallel::configure(saved);
}
