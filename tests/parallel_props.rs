//! Property-based tests of the parallel kernel layer's determinism
//! contract (`docs/THREADING.md`): for any shape and any thread count, a
//! parallel kernel must produce output **bitwise identical** to the serial
//! path — `assert_eq!` on the raw `f32` slices, no tolerance.
//!
//! The global [`ThreadConfig`] is process-wide, so every test that touches
//! it serialises on [`CONFIG_LOCK`]; the std test harness otherwise runs
//! integration tests on multiple threads.

use pilote::tensor::parallel::{self, ThreadConfig};
use pilote::tensor::{Rng64, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per thread count in `{2, 3, 4, 7}` with the size
/// threshold disabled, comparing against the serial result computed first.
fn assert_thread_invariant(f: impl Fn() -> Tensor) {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let saved = parallel::current();
    parallel::configure(ThreadConfig::serial());
    let serial = f();
    for threads in [2usize, 3, 4, 7] {
        parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
        let par = f();
        assert_eq!(
            serial.as_slice(),
            par.as_slice(),
            "kernel output diverged from serial at {threads} thread(s)"
        );
    }
    parallel::configure(saved);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn matmul_is_bitwise_thread_invariant(
        seed in 0u64..10_000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
    ) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        assert_thread_invariant(|| a.matmul(&b).unwrap());
    }

    #[test]
    fn matmul_t_is_bitwise_thread_invariant(
        seed in 0u64..10_000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
    ) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
        // matmul_t contracts against the *rows* of b: [m,k] × [n,k]ᵀ.
        let b = Tensor::randn([n, k], 0.0, 1.0, &mut rng);
        assert_thread_invariant(|| a.matmul_t(&b).unwrap());
    }

    #[test]
    fn sum_is_bitwise_thread_invariant(
        seed in 0u64..10_000,
        rows in 1usize..64,
        cols in 1usize..32,
    ) {
        // `sum` is contractually serial at every thread count (a single
        // f64 accumulation chain); the property still pins the bits so a
        // future parallelisation cannot silently change results.
        let mut rng = Rng64::new(seed);
        let x = Tensor::randn([rows, cols], 0.0, 10.0, &mut rng);
        let _guard = CONFIG_LOCK.lock().unwrap();
        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let serial = x.sum();
        for threads in [2usize, 4, 8] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            prop_assert_eq!(
                serial.to_bits(),
                x.sum().to_bits(),
                "sum bits changed at {} thread(s)",
                threads
            );
        }
        parallel::configure(saved);
    }

    #[test]
    fn sum_axis_is_bitwise_thread_invariant(
        seed in 0u64..10_000,
        rows in 1usize..40,
        cols in 1usize..24,
    ) {
        use pilote::tensor::reduce::Axis;
        let mut rng = Rng64::new(seed);
        let x = Tensor::randn([rows, cols], 0.0, 5.0, &mut rng);
        assert_thread_invariant(|| x.sum_axis(Axis::Rows).unwrap());
        assert_thread_invariant(|| x.sum_axis(Axis::Cols).unwrap());
    }
}
