//! End-to-end integration: simulator → preprocessing → features →
//! pre-training → incremental edge update → NCM inference, asserting the
//! paper's qualitative claims at test scale.

use pilote::prelude::*;

/// Builds a 5-activity corpus, returning `(old_train, new_pool, test)` for
/// the "Run arrives on the edge" scenario.
fn scenario(seed: u64, per_class: usize) -> (Dataset, Dataset, Dataset) {
    let mut sim = Simulator::with_seed(seed);
    let counts: Vec<(Activity, usize)> =
        Activity::ALL.iter().map(|&a| (a, per_class)).collect();
    let (data, _) = generate_features(&mut sim, &counts).expect("simulate");
    let mut rng = Rng64::new(seed ^ 0xe2e);
    let (train, test) = data.stratified_split(0.3, &mut rng).expect("split");
    let old_labels: Vec<usize> = Activity::ALL
        .iter()
        .filter(|&&a| a != Activity::Run)
        .map(|a| a.label())
        .collect();
    (
        train.filter_classes(&old_labels).expect("old"),
        train.filter_classes(&[Activity::Run.label()]).expect("new"),
        test,
    )
}

#[test]
fn full_pipeline_learns_and_retains() {
    let (old, new_pool, test) = scenario(101, 80);
    let cfg = PiloteConfig::fast_test(101);
    let (model, report) =
        Pilote::pretrain(cfg, &old, 25, SelectionStrategy::Herding).expect("pretrain");
    assert!(!report.epochs.is_empty(), "pre-training ran no epochs");

    let old_labels: Vec<usize> = Activity::ALL
        .iter()
        .filter(|&&a| a != Activity::Run)
        .map(|a| a.label())
        .collect();
    let old_test = test.filter_classes(&old_labels).expect("old test");
    let run_test = test.filter_classes(&[Activity::Run.label()]).expect("run test");

    let mut pilote = model.clone_model();
    let before_old = pilote.accuracy(&old_test).expect("eval");
    assert!(before_old > 0.6, "pre-trained old-class accuracy {before_old}");

    let mut rng = Rng64::new(7);
    let new_data = new_pool.sample_class(Activity::Run.label(), 25, &mut rng).expect("sample");
    pilote.learn_new_class(&new_data, 25).expect("update");

    let after_old = pilote.accuracy(&old_test).expect("eval");
    let run_acc = pilote.accuracy(&run_test).expect("eval");
    assert!(run_acc > 0.5, "PILOTE failed to learn Run: {run_acc}");
    assert!(
        after_old > before_old - 0.25,
        "catastrophic forgetting: old acc {before_old} → {after_old}"
    );
    assert_eq!(pilote.classifier().n_classes(), 5);
}

#[test]
fn pilote_retains_old_classes_at_least_as_well_as_retrained() {
    // The paper's Table 2 / Fig. 4 claim, aggregated over seeds to absorb
    // run-to-run variance at this tiny scale.
    let mut pilote_old_sum = 0.0f32;
    let mut retrained_old_sum = 0.0f32;
    for seed in [11u64, 22, 33] {
        let (old, new_pool, test) = scenario(seed, 80);
        let cfg = PiloteConfig::fast_test(seed);
        let (base, _) =
            Pilote::pretrain(cfg, &old, 25, SelectionStrategy::Herding).expect("pretrain");
        let old_labels: Vec<usize> = Activity::ALL
            .iter()
            .filter(|&&a| a != Activity::Run)
            .map(|a| a.label())
            .collect();
        let old_test = test.filter_classes(&old_labels).expect("old test");
        let mut rng = Rng64::new(seed);
        let new_data =
            new_pool.sample_class(Activity::Run.label(), 20, &mut rng).expect("sample");

        let mut p = base.clone_model();
        p.learn_new_class(&new_data, 20).expect("pilote");
        pilote_old_sum += p.accuracy(&old_test).expect("eval");

        let mut r = base.clone_model();
        retrained_update(&mut r, &new_data, 20).expect("retrained");
        retrained_old_sum += r.accuracy(&old_test).expect("eval");
    }
    assert!(
        pilote_old_sum >= retrained_old_sum - 0.15,
        "PILOTE old-class retention ({pilote_old_sum}) far below re-trained ({retrained_old_sum})"
    );
}

#[test]
fn distillation_anchors_old_embeddings() {
    // The mechanism claim, as a controlled comparison: run the *same*
    // incremental update twice — once with a strong distillation weight
    // (α = 0.9) and once with none (α = 0) — and measure how far the
    // old-class exemplar embeddings drift from the frozen teacher. The
    // distilled update must drift less.
    let (old, new_pool, _) = scenario(55, 80);
    let cfg = PiloteConfig::fast_test(55);
    let (base, _) = Pilote::pretrain(cfg, &old, 25, SelectionStrategy::Herding).expect("pretrain");
    let support = base.support().to_dataset().expect("support");

    let mut teacher = base.clone_model();
    let anchor = teacher.embed(&support.features);

    let mut rng = Rng64::new(55);
    let new_data = new_pool.sample_class(Activity::Run.label(), 25, &mut rng).expect("sample");

    let drift_at = |alpha: f32| {
        let mut m = base.clone_model();
        m.config_mut().alpha = alpha;
        m.learn_new_class(&new_data, 25).expect("update");
        m.embed(&support.features).try_sub(&anchor).unwrap().norm()
    };
    let anchored = drift_at(0.9);
    let free = drift_at(0.0);
    assert!(
        anchored < free,
        "distillation did not anchor embeddings: α=0.9 drift {anchored} vs α=0 drift {free}"
    );
}

#[test]
fn pretrained_baseline_never_moves_the_network() {
    let (old, new_pool, _) = scenario(77, 60);
    let cfg = PiloteConfig::fast_test(77);
    let (base, _) = Pilote::pretrain(cfg, &old, 20, SelectionStrategy::Herding).expect("pretrain");
    let mut model = base.clone_model();
    let probe = new_pool.features.slice_rows(0, 4).expect("probe");
    let before = model.embed(&probe);
    let mut rng = Rng64::new(77);
    let new_data = new_pool.sample_class(Activity::Run.label(), 20, &mut rng).expect("sample");
    pretrained_update(&mut model, &new_data, 20).expect("update");
    let after = model.embed(&probe);
    assert!(before.max_abs_diff(&after).unwrap() < 1e-6);
    assert_eq!(model.classifier().n_classes(), 5);
}

#[test]
fn incremental_learning_is_reproducible_given_seeds() {
    let (old, new_pool, test) = scenario(88, 60);
    let run = |seed: u64| {
        let cfg = PiloteConfig::fast_test(seed);
        let (mut m, _) =
            Pilote::pretrain(cfg, &old, 20, SelectionStrategy::Herding).expect("pretrain");
        let mut rng = Rng64::new(seed);
        let new_data =
            new_pool.sample_class(Activity::Run.label(), 20, &mut rng).expect("sample");
        m.learn_new_class(&new_data, 20).expect("update");
        m.accuracy(&test).expect("eval")
    };
    assert_eq!(run(5), run(5), "same seed must give identical accuracy");
}
