//! Property-based tests of the packed register-tiled GEMM kernel
//! (`docs/KERNELS.md`): numerical correctness against an f64 naive
//! reference on adversarial shapes, bitwise identity with the pre-packing
//! serial loop, NaN/Inf propagation (no zero-skip), and byte-identity of
//! the fused `pairwise_sq_dists` epilogue against the unfused two-pass
//! form at `PILOTE_THREADS` 1 vs 4.
//!
//! Shape strategy notes: the packed kernel's edge cases live at panel
//! boundaries — `m` around the `MR` register-tile height (4/6/8 per SIMD
//! tier), `n` around the `NR` panel width (16/32), `k` around the old
//! `KB = 64` blocking factor — plus degenerate empty extents. The ranges
//! below sweep across all of them, whatever tier the host dispatches to.
//!
//! The global [`ThreadConfig`] is process-wide, so every test that touches
//! it serialises on [`CONFIG_LOCK`].

use pilote::tensor::matmul::matmul_unpacked_reference;
use pilote::tensor::parallel::{self, ThreadConfig};
use pilote::tensor::{Rng64, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// f64-accumulated naive product: the ground truth the f32 kernels are
/// compared against within an accumulation-error tolerance.
fn naive_f64(a: &Tensor, b: &Tensor) -> Vec<f64> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += av[i * k + kk] as f64 * bv[kk * n + j] as f64;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Asserts `got` (f32 kernel output) matches `want` (f64 reference) within
/// the error bound of an ascending-k f32 accumulation chain of length `k`.
fn assert_close_to_f64(got: &[f32], want: &[f64], k: usize, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    // Worst-case relative error of k sequential f32 mul+adds grows ~ k·ε;
    // scale an absolute floor in as well for near-zero sums.
    let tol = (k.max(1) as f64) * (f32::EPSILON as f64) * 8.0;
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let err = (g as f64 - w).abs();
        let bound = tol * w.abs().max(1.0);
        assert!(err <= bound, "{ctx}: element {i}: got {g}, want {w}, err {err:.3e} > {bound:.3e}");
    }
}

/// Shapes that stress every packing boundary: `k` straddling the legacy
/// KB=64 block, `m`/`n` straddling the widest tile (8×32) and the
/// narrowest (4×16), plus minimal extents.
const ADVERSARIAL: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 63, 33),
    (4, 64, 16),
    (5, 65, 17),
    (7, 64, 31),
    (8, 63, 32),
    (9, 65, 33),
    (3, 1, 49),
    (17, 129, 2),
];

#[test]
fn packed_matmul_matches_f64_reference_on_adversarial_shapes() {
    let mut rng = Rng64::new(0xD1CE);
    for &(m, k, n) in ADVERSARIAL {
        let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        let got = a.matmul(&b).unwrap();
        assert_close_to_f64(got.as_slice(), &naive_f64(&a, &b), k, &format!("({m},{k},{n})"));
        // And the same product through the transpose-absorbing entry
        // points: matmul_t via a materialised [n, k] operand…
        let bt = b.transpose().unwrap();
        let got_t = a.matmul_t(&bt).unwrap();
        assert_eq!(got.as_slice(), got_t.as_slice(), "matmul_t packing diverged ({m},{k},{n})");
        // …and t_matmul via a materialised [k, m] operand.
        let at = a.transpose().unwrap();
        let got_tm = at.t_matmul(&b).unwrap();
        assert_eq!(got.as_slice(), got_tm.as_slice(), "t_matmul packing diverged ({m},{k},{n})");
    }
}

#[test]
fn empty_extents_produce_empty_or_zero_products() {
    // m = 0 and n = 0: empty outputs of the right shape.
    let a0 = Tensor::zeros([0, 5]);
    let b = Tensor::zeros([5, 3]);
    assert_eq!(a0.matmul(&b).unwrap().shape().dims(), &[0, 3]);
    let b0 = Tensor::zeros([5, 0]);
    let a = Tensor::zeros([4, 5]);
    assert_eq!(a.matmul(&b0).unwrap().shape().dims(), &[4, 0]);
    // k = 0: a [m, n] of structural zeros.
    let ak = Tensor::zeros([4, 0]);
    let bk = Tensor::zeros([0, 3]);
    let out = ak.matmul(&bk).unwrap();
    assert_eq!(out.shape().dims(), &[4, 3]);
    assert!(out.as_slice().iter().all(|&v| v == 0.0));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The packed kernel is bitwise-identical to the pre-packing serial
    /// i-k-j loop on every shape: both accumulate each output element in
    /// one ascending-k f32 chain.
    #[test]
    fn packed_is_bitwise_identical_to_legacy_loop(
        seed in 0u64..10_000,
        m in 1usize..40,
        k in 60usize..70, // straddles the legacy KB = 64 block boundary
        n in 1usize..40,
    ) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        let _guard = CONFIG_LOCK.lock().unwrap();
        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let packed = a.matmul(&b).unwrap();
        parallel::configure(saved);
        let legacy = matmul_unpacked_reference(&a, &b).unwrap();
        prop_assert_eq!(packed.as_slice(), legacy.as_slice());
    }

    /// A NaN planted anywhere in B reaches every output element whose dot
    /// product spans it, regardless of zeros in A (`0 · NaN = NaN`) — and
    /// identically through all packed entry points.
    #[test]
    fn nan_propagation_is_kernel_invariant(
        seed in 0u64..10_000,
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..20,
    ) {
        let mut rng = Rng64::new(seed);
        // Alternate between an all-zero A (the old zero-skip bug's trigger:
        // 0 · NaN must still be NaN) and a dense random A.
        let a = if seed % 2 == 0 {
            Tensor::zeros([m, k])
        } else {
            Tensor::randn([m, k], 0.0, 1.0, &mut rng)
        };
        let mut b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        let (ki, ji) = ((seed as usize) % k, (seed as usize / 7) % n);
        b.set(&[ki, ji], f32::NAN).unwrap();

        let c = a.matmul(&b).unwrap();
        for i in 0..m {
            prop_assert!(c.at(i, ji).is_nan(), "matmul row {} col {} not NaN", i, ji);
        }
        let bt = b.transpose().unwrap();
        let c_t = a.matmul_t(&bt).unwrap();
        let at = a.transpose().unwrap();
        let c_tm = at.t_matmul(&b).unwrap();
        let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&c), bits(&c_t), "matmul_t NaN pattern diverged");
        prop_assert_eq!(bits(&c), bits(&c_tm), "t_matmul NaN pattern diverged");
        let legacy = matmul_unpacked_reference(&a, &b).unwrap();
        prop_assert_eq!(bits(&c), bits(&legacy), "legacy loop NaN pattern diverged");
    }

    /// Fused `pairwise_sq_dists` (squared-distance GEMM epilogue) is
    /// byte-identical to the unfused two-pass form, at 1 and 4 threads.
    #[test]
    fn fused_sq_dists_epilogue_is_byte_identical(
        seed in 0u64..10_000,
        m in 1usize..40,
        d in 1usize..48,
        n in 1usize..20,
    ) {
        let mut rng = Rng64::new(seed);
        let x = Tensor::randn([m, d], 0.0, 1.0, &mut rng);
        let y = Tensor::randn([n, d], 0.0, 1.0, &mut rng);
        let _guard = CONFIG_LOCK.lock().unwrap();
        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let reference = x.pairwise_sq_dists_unfused(&y).unwrap();
        for threads in [1usize, 4] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            let fused = x.pairwise_sq_dists(&y).unwrap();
            let unfused = x.pairwise_sq_dists_unfused(&y).unwrap();
            prop_assert_eq!(
                fused.as_slice(), reference.as_slice(),
                "fused diverged at {} threads", threads
            );
            prop_assert_eq!(
                unfused.as_slice(), reference.as_slice(),
                "unfused diverged at {} threads", threads
            );
        }
        parallel::configure(saved);
    }

    /// The packed kernel stays bitwise thread-invariant on shapes around
    /// the register-tile boundaries (the band split interacts with tile
    /// remainders there).
    #[test]
    fn packed_matmul_is_bitwise_thread_invariant_at_tile_edges(
        seed in 0u64..10_000,
        m in 6usize..10,  // straddles MR ∈ {4, 6, 8}
        k in 30usize..34,
        n in 15usize..34, // straddles NR ∈ {16, 32}
    ) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        let _guard = CONFIG_LOCK.lock().unwrap();
        let saved = parallel::current();
        parallel::configure(ThreadConfig::serial());
        let serial = a.matmul(&b).unwrap();
        for threads in [2usize, 3, 4, 7] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            let par = a.matmul(&b).unwrap();
            prop_assert_eq!(serial.as_slice(), par.as_slice(), "diverged at {} threads", threads);
        }
        parallel::configure(saved);
    }
}
