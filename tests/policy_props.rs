//! Property and integration tests for the self-healing fleet policy
//! (`docs/POLICY.md`):
//!
//! * **determinism**: the full closed-loop schedule — quarantine, canary
//!   halt, suspect screening, re-anchor, degrade — produces byte-identical
//!   device logs, policy summaries and fleet stats across two runs and
//!   across `PILOTE_THREADS` 1 vs 4;
//! * **exclusion**: a quarantined device's weights never enter
//!   [`pilote::magneto::federated_average`] — the installed merge is
//!   bitwise equal to the average predicted from the healthy
//!   contributions alone, and the device logs a typed
//!   `FederatedExcluded { reason: Quarantined }`;
//! * **halt exactness**: a halted canary stage restores the staged
//!   devices' parameters bitwise to their pre-round state.
//!
//! The global [`ThreadConfig`] is process-wide, so the thread-variance
//! test serialises on [`CONFIG_LOCK`], same as `tests/fleet_props.rs`.

use pilote::magneto::{
    federated_average, Deployment, EventKind, ExclusionReason, Fleet, FleetConfig, PolicyConfig,
    RolloutStage,
};
use pilote::nn::{Checkpoint, Layer};
use pilote::prelude::*;
use pilote::tensor::parallel::{self, ThreadConfig};
use std::sync::{Mutex, OnceLock};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

const DEVICES: usize = 5;

struct Fixture {
    deployment: Deployment,
    probe: Dataset,
    old_labels: Vec<usize>,
}

/// One pre-trained two-class deployment plus a held-out probe set,
/// shared by every test (pre-training per test would dominate runtime).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut sim = Simulator::with_seed(47);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm.clone(), PiloteConfig::fast_test(47));
        let old_labels = vec![Activity::Still.label(), Activity::Walk.label()];
        let (deployment, _) = server.pretrain_and_package(&old_labels, 12).expect("package");
        let probe_raw = sim.raw_dataset(&[(Activity::Still, 12), (Activity::Walk, 12)]);
        let features = norm
            .transform(
                &pilote::har_data::features::extract_batch(&probe_raw).expect("features"),
            )
            .expect("normalise");
        let probe = Dataset::new(features, probe_raw.labels).expect("probe");
        Fixture { deployment, probe, old_labels }
    })
}

/// A policied fleet over the shared deployment: armed monitors plus the
/// self-healing policy anchored on the deployment itself.
fn policied_fleet(seed: u64) -> Fleet {
    let fx = fixture();
    let links = [LinkModel::wifi(), LinkModel::cellular_4g(), LinkModel::weak_cellular()];
    let slots: Vec<(DeviceProfile, LinkModel)> = DeviceProfile::roster(DEVICES)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, links[i % links.len()]))
        .collect();
    let config = FleetConfig { seed, federated_every: 0, ..FleetConfig::default() };
    let mut fleet = Fleet::deploy(slots, &fx.deployment, config).expect("deploy");
    fleet
        .arm_quality_monitors(&fx.probe, &fx.old_labels, QualityThresholds::default())
        .expect("arm");
    fleet
        .enable_policy(PolicyConfig::default(), fx.deployment.clone())
        .expect("enable policy");
    fleet.set_adaptive_thresholds(AdaptiveThresholds::default());
    fleet
}

/// Overwrites a device's net parameters with a fixed junk pattern and
/// commits the damage — deterministic, no RNG.
fn poison(device: &mut EdgeDevice) {
    let model = device.model_mut();
    for (p, _) in model.net_mut().layers_mut().params_and_grads() {
        for (k, v) in p.as_mut_slice().iter_mut().enumerate() {
            *v = ((k % 7) as f32 - 3.0) * 1.5;
        }
    }
    model.refresh_prototypes().expect("refresh");
}

/// Runs the full closed-loop schedule (visible poison → quarantine,
/// silent poison → canary halt + screening, two re-offenses → re-anchor
/// then degrade, final clean round) and returns every observable output
/// as one string: per-device logs, policy summary, fleet stats.
fn run_schedule(seed: u64) -> String {
    let mut fleet = policied_fleet(seed);
    for round in 0..6 {
        match round {
            1 => {
                poison(fleet.device_mut(1));
                fleet.device_mut(1).sample_quality().expect("sample visible");
                poison(fleet.device_mut(3));
            }
            3 | 4 => {
                poison(fleet.device_mut(3));
                fleet.device_mut(3).sample_quality().expect("sample repeat");
            }
            _ => {}
        }
        fleet.federated_round().expect("round");
    }
    let logs: Vec<String> = (0..fleet.len())
        .map(|i| serde_json::to_string(fleet.device(i).log()).expect("log json"))
        .collect();
    let summary =
        serde_json::to_string(&fleet.policy().expect("policy").summary()).expect("summary json");
    let stats = serde_json::to_string(&fleet.stats()).expect("stats json");
    format!("{}\n{summary}\n{stats}", logs.join("\n"))
}

/// The whole closed loop is byte-identical across two runs and across
/// thread counts — quarantine decisions, halt decisions, repair ladder
/// and virtual clocks included.
#[test]
fn closed_loop_schedule_is_byte_identical_across_runs_and_threads() {
    let _guard = CONFIG_LOCK.lock().expect("config lock");
    let prev = parallel::current();
    parallel::configure(ThreadConfig::serial());
    let serial_a = run_schedule(11);
    let serial_b = run_schedule(11);
    assert_eq!(serial_a, serial_b, "same seed, same threads must be identical");
    parallel::configure(ThreadConfig { num_threads: 4, min_parallel_len: 1 });
    let threaded = run_schedule(11);
    parallel::configure(prev);
    assert_eq!(serial_a, threaded, "PILOTE_THREADS must not leak into policy outputs");
}

/// A quarantined device's weights never reach the merge: the installed
/// parameters are bitwise the average of the healthy contributions alone.
#[test]
fn quarantined_weights_never_enter_the_federated_average() {
    let mut fleet = policied_fleet(23);
    fleet.federated_round().expect("clean round");

    // Poison device 1 visibly: the next control step quarantines it
    // before collection.
    poison(fleet.device_mut(1));
    fleet.device_mut(1).sample_quality().expect("sample");

    // Predict the merge from the healthy devices only. Their parameters
    // are untouched by the control step, so capturing now equals what
    // collection will see. The victim's rolled-back weights must NOT be
    // part of it either — quarantined means held out entirely.
    let healthy: Vec<usize> = (0..fleet.len()).filter(|&i| i != 1).collect();
    let contributions: Vec<(Checkpoint, usize)> = healthy
        .iter()
        .map(|&i| {
            let device = fleet.device_mut(i);
            let ckpt = Checkpoint::capture(device.model_mut().net_mut().layers_mut());
            let support = device.model_mut().support().len();
            (ckpt, support)
        })
        .collect();
    let predicted = federated_average(&contributions).expect("predicted merge");

    fleet.federated_round().expect("policied round");

    let events = fleet.device(1).log().events();
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            EventKind::FederatedExcluded { reason: ExclusionReason::Quarantined, .. }
        )),
        "the quarantined device must log a typed exclusion"
    );
    for &i in &healthy {
        let installed = Checkpoint::capture(fleet.device_mut(i).model_mut().net_mut().layers_mut());
        assert_eq!(
            serde_json::to_string(&installed).expect("installed json"),
            serde_json::to_string(&predicted).expect("predicted json"),
            "device {i} must install exactly the healthy-only average"
        );
    }
}

/// A halted stage restores its devices bitwise: the canary's parameters
/// after the halt equal its parameters before the round.
#[test]
fn halted_canary_installs_are_restored_bitwise() {
    let mut fleet = policied_fleet(31);
    fleet.federated_round().expect("clean round");

    // Silent poison on every non-canary contributor, so the canary
    // devices are clean victims of a merge dominated by junk (a single
    // poisoned 1-of-5 contribution dilutes below the alert thresholds).
    let canary = fleet.policy().expect("policy").plan().stage(RolloutStage::Canary).to_vec();
    let culprits: Vec<usize> = (0..fleet.len()).filter(|i| !canary.contains(i)).collect();
    assert!(!culprits.is_empty(), "a non-canary device exists");
    for &i in &culprits {
        poison(fleet.device_mut(i));
    }

    let before: Vec<String> = canary
        .iter()
        .map(|&i| {
            let ckpt = Checkpoint::capture(fleet.device_mut(i).model_mut().net_mut().layers_mut());
            serde_json::to_string(&ckpt).expect("checkpoint json")
        })
        .collect();

    fleet.federated_round().expect("halted round");

    let policy = fleet.policy().expect("policy");
    assert_eq!(policy.summary().halts, 1, "the poisoned merge must halt the canary");
    for (&i, expected) in canary.iter().zip(&before) {
        let after = Checkpoint::capture(fleet.device_mut(i).model_mut().net_mut().layers_mut());
        assert_eq!(
            &serde_json::to_string(&after).expect("after json"),
            expected,
            "canary device {i} must be restored exactly"
        );
        assert!(
            fleet
                .device(i)
                .log()
                .events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::RolloutHalted { .. })),
            "canary device {i} must log the halt"
        );
    }
}
