//! Cross-crate integration of the edge-resource substrate with the
//! learner: cache budgets, quantised support sets, latency metering.

use pilote::edge_sim::memory::ValueWidth;
use pilote::edge_sim::quantize::{Quantization, QuantizedMatrix};
use pilote::prelude::*;

fn small_model(seed: u64) -> (Pilote, Dataset) {
    let mut sim = Simulator::with_seed(seed);
    let (data, _) = generate_features(
        &mut sim,
        &[(Activity::Still, 60), (Activity::Walk, 60), (Activity::Drive, 60)],
    )
    .expect("simulate");
    let mut rng = Rng64::new(seed);
    let (train, test) = data.stratified_split(0.3, &mut rng).expect("split");
    let cfg = PiloteConfig::fast_test(seed);
    let (model, _) = Pilote::pretrain(cfg, &train, 20, SelectionStrategy::Herding).expect("pretrain");
    (model, test)
}

#[test]
fn support_set_bytes_match_memory_budget() {
    let (model, _) = small_model(1);
    let support = model.support().to_dataset().expect("support");
    let budget = MemoryBudget::new(support.len(), FEATURE_DIM, ValueWidth::F32);
    // 3 classes × 20 exemplars × 80 features × 4 bytes
    assert_eq!(budget.total_bytes(), 3 * 20 * 80 * 4);
    assert_eq!(support.features.len() * 4, budget.total_bytes() as usize);
}

#[test]
fn cache_shrink_respects_algorithm_1_budget() {
    // Algorithm 1 line 1: m = K / (s − 1). A new class arriving under a
    // fixed cache K means shrinking every class's exemplar list.
    let (mut model, test) = small_model(2);
    let k_total = 30; // cache size in exemplars
    let classes = model.support().labels().len();
    let budget = MemoryBudget::new(k_total, FEATURE_DIM, ValueWidth::F32);
    let m = budget.per_class(classes);
    model.support_mut().shrink_per_class(m);
    model.refresh_prototypes().expect("prototypes");
    assert_eq!(model.support().len(), m * classes);
    assert!(model.support().len() <= k_total);
    // Model still functions after the shrink.
    let acc = model.accuracy(&test).expect("eval");
    assert!(acc > 0.4, "accuracy collapsed after cache shrink: {acc}");
}

#[test]
fn quantised_support_set_preserves_accuracy() {
    let (mut model, test) = small_model(3);
    let baseline = model.accuracy(&test).expect("eval");

    // Quantise every class's exemplars to i8 and reload them.
    for label in model.support().labels() {
        let feats = model.support().class(label).unwrap().clone();
        let q = QuantizedMatrix::encode(&feats, Quantization::I8).expect("encode");
        model.support_mut().put_class(label, q.decode());
    }
    model.refresh_prototypes().expect("prototypes");
    let quantised = model.accuracy(&test).expect("eval");
    assert!(
        quantised > baseline - 0.1,
        "i8 quantisation destroyed accuracy: {baseline} → {quantised}"
    );
}

#[test]
fn latency_meter_times_real_updates() {
    let (model, _) = small_model(4);
    let mut meter = LatencyMeter::new();
    let mut sim = Simulator::with_seed(40);
    let (new_data, _) = generate_features(&mut sim, &[(Activity::Run, 25)]).expect("simulate");
    let mut m = model.clone_model();
    meter.time("edge_update", || m.learn_new_class(&new_data, 20).expect("update"));
    let host = meter.mean_seconds("edge_update").expect("sample");
    assert!(host > 0.0);
    let wearable = DeviceProfile::wearable();
    let projected = meter.projected_seconds("edge_update", &wearable).expect("projection");
    assert!((projected / host - wearable.cpu_factor).abs() < 1e-9);
}

#[test]
fn model_fits_flagship_but_support_scales_to_wearable() {
    let mut rng = Rng64::new(5);
    let mut net = EmbeddingNet::new(NetConfig::paper(), &mut rng);
    let params = net.param_count();
    let model_bytes = pilote::edge_sim::memory::model_bytes(params);
    assert!(DeviceProfile::flagship_phone().fits_ram(model_bytes));
    // The wearable cannot hold the paper backbone, but holds a support set.
    let support = MemoryBudget::new(200, FEATURE_DIM, ValueWidth::I8);
    assert!(DeviceProfile::wearable().fits_storage(support.total_bytes()));
}
