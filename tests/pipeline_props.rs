//! Property-based tests over the cross-crate pipeline: simulator →
//! features → normaliser → quantiser → NCM.

use pilote::core::exemplar::class_prototype;
use pilote::edge_sim::quantize::{Quantization, QuantizedMatrix};
use pilote::har_data::features::extract;
use pilote::har_data::preprocess::{moving_average, segment, Normalizer};
use pilote::har_data::sensors::CHANNELS;
use pilote::prelude::*;
use proptest::prelude::*;
// Explicit import wins over both globs: `Strategy` here is proptest's
// trait, not the continual-learning enum from the pilote prelude.
use proptest::strategy::Strategy;

fn arb_activity() -> impl Strategy<Value = Activity> {
    prop::sample::select(Activity::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn features_are_finite_for_any_simulated_window(seed in 0u64..10_000, activity in arb_activity()) {
        let mut sim = Simulator::with_seed(seed);
        let window = sim.window(activity);
        let features = extract(&window).unwrap();
        prop_assert_eq!(features.len(), FEATURE_DIM);
        prop_assert!(features.all_finite());
    }

    #[test]
    fn window_generation_is_deterministic(seed in 0u64..10_000, activity in arb_activity()) {
        let a = Simulator::with_seed(seed).window(activity);
        let b = Simulator::with_seed(seed).window(activity);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn quantise_round_trip_respects_error_bound(
        seed in 0u64..10_000,
        rows in 1usize..40,
        cols in 1usize..20,
    ) {
        let mut rng = Rng64::new(seed);
        let data = Tensor::randn([rows, cols], 0.0, 5.0, &mut rng);
        for mode in [Quantization::I8, Quantization::U16] {
            let q = QuantizedMatrix::encode(&data, mode).unwrap();
            prop_assert!(q.max_error(&data).unwrap() <= q.error_bound() * 1.01 + 1e-6);
        }
    }

    #[test]
    fn normaliser_transform_is_affine_invariant_to_shift(
        seed in 0u64..10_000,
        shift in -100.0f32..100.0,
    ) {
        // Shifting all inputs by a constant must not change the z-scores.
        let mut rng = Rng64::new(seed);
        let data = Tensor::randn([30, 5], 0.0, 2.0, &mut rng);
        let shifted = data.add_scalar(shift);
        let (_, a) = Normalizer::fit_transform(&data).unwrap();
        let (_, b) = Normalizer::fit_transform(&shifted).unwrap();
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-2);
    }

    #[test]
    fn moving_average_never_exceeds_input_range(
        seed in 0u64..10_000,
        width in 0usize..5,
    ) {
        let width = 2 * width + 1; // odd
        let mut rng = Rng64::new(seed);
        let data = Tensor::randn([60, 3], 0.0, 3.0, &mut rng);
        let smooth = moving_average(&data, width).unwrap();
        prop_assert!(smooth.max().unwrap() <= data.max().unwrap() + 1e-5);
        prop_assert!(smooth.min().unwrap() >= data.min().unwrap() - 1e-5);
    }

    #[test]
    fn segmentation_windows_tile_the_session(
        len in 1usize..400,
        window in 1usize..50,
    ) {
        let data: Vec<f32> = (0..len * 2).map(|i| i as f32).collect();
        let session = Tensor::from_vec(data, [len, 2]).unwrap();
        let wins = segment(&session, window, window).unwrap();
        prop_assert_eq!(wins.len(), len / window);
        for w in &wins {
            prop_assert_eq!(w.rows(), window);
        }
    }

    #[test]
    fn ncm_always_picks_an_existing_label(
        seed in 0u64..10_000,
        classes in 2usize..6,
        d in 2usize..10,
    ) {
        let mut rng = Rng64::new(seed);
        let mut clf = NcmClassifier::new(d);
        let labels: Vec<usize> = (0..classes).map(|c| c * 7 + 1).collect();
        for &l in &labels {
            clf.set_prototype(l, &Tensor::randn([d], 0.0, 1.0, &mut rng)).unwrap();
        }
        let x = Tensor::randn([20, d], 0.0, 3.0, &mut rng);
        for p in clf.classify(&x).unwrap() {
            prop_assert!(labels.contains(&p));
        }
    }

    #[test]
    fn prototype_is_permutation_invariant(seed in 0u64..10_000, n in 2usize..30) {
        let mut rng = Rng64::new(seed);
        let emb = Tensor::randn([n, 4], 0.0, 1.0, &mut rng);
        let mu = class_prototype(&emb).unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mu2 = class_prototype(&emb.select_rows(&order).unwrap()).unwrap();
        prop_assert!(mu.max_abs_diff(&mu2).unwrap() < 1e-4);
    }

    #[test]
    fn herding_selection_is_subset_without_duplicates(
        seed in 0u64..10_000,
        n in 1usize..50,
        m in 0usize..60,
    ) {
        let mut rng = Rng64::new(seed);
        let emb = Tensor::randn([n, 3], 0.0, 1.0, &mut rng);
        let sel = select_exemplars(&emb, m, SelectionStrategy::Herding, &mut rng).unwrap();
        prop_assert_eq!(sel.len(), m.min(n));
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.len());
        prop_assert!(sel.iter().all(|&i| i < n));
    }
}

#[test]
fn feature_extraction_matches_channel_contract() {
    // CHANNELS and FEATURE_DIM are linked by the documented layout:
    // 2·CHANNELS + 6·TRIADS + 6 globals = 80.
    assert_eq!(2 * CHANNELS + 6 * 5 + 6, FEATURE_DIM);
}
