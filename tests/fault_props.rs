//! Property-based tests of the fault-injection subsystem and the
//! resilience contract of `docs/RESILIENCE.md`:
//!
//! * one seed → one fault schedule, bit-for-bit, per fault family;
//! * quarantine counts match the injected non-finite corruption exactly;
//! * an interrupted incremental update rolls back to the last-good
//!   checkpoint **exactly** (identical predictions, identical support);
//! * no schedule — however hostile — panics the device or leaves a
//!   non-finite weight or prototype behind;
//! * the faulted pipeline stays bitwise thread-invariant (the PR 1
//!   determinism contract extends to fault runs).
//!
//! The fixed-seed matrix test at the bottom is what `scripts/ci.sh` runs
//! under several `PILOTE_FAULT_SEED` values.

use pilote::core::UpdateStage;
use pilote::edge_sim::faults::{
    CrashPlan, FlakyLink, LinkFaultRates, RetryPolicy, SensorFaultInjector, SensorFaultKind,
    SensorFaultRates,
};
use pilote::har_data::features::extract_batch;
use pilote::har_data::sensors::WINDOW_LEN;
use pilote::har_data::stream::WindowAssembler;
use pilote::magneto::Deployment;
use pilote::prelude::*;
use pilote::tensor::parallel::{self, ThreadConfig};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// The global [`ThreadConfig`] is process-wide; thread-variance tests
/// serialise on this, same as `tests/parallel_props.rs`.
static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// One pre-trained deployment shared by every expensive property case
/// (pre-training per case would dominate the suite's runtime).
struct Fixture {
    deployment: Deployment,
    /// Normalised Run features the device can be asked to learn.
    run_features: Tensor,
    /// Normalised mixed-activity features for prediction comparisons.
    eval_features: Tensor,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut sim = Simulator::with_seed(31);
        let (data, norm) = generate_features(
            &mut sim,
            &[(Activity::Still, 50), (Activity::Walk, 50), (Activity::Run, 50)],
        )
        .expect("simulate");
        let server = CloudServer::new(data, norm.clone(), PiloteConfig::fast_test(5));
        let (deployment, _) = server
            .pretrain_and_package(&[Activity::Still.label(), Activity::Walk.label()], 15)
            .expect("package");
        let run_raw = sim.raw_dataset(&[(Activity::Run, 20)]);
        let run_features =
            norm.transform(&extract_batch(&run_raw).expect("features")).expect("normalise");
        let eval_raw = sim.raw_dataset(&[
            (Activity::Still, 8),
            (Activity::Walk, 8),
            (Activity::Run, 8),
        ]);
        let eval_features =
            norm.transform(&extract_batch(&eval_raw).expect("features")).expect("normalise");
        Fixture { deployment, run_features, eval_features }
    })
}

/// Installs a fresh device from the shared deployment.
fn device() -> EdgeDevice {
    EdgeDevice::install(DeviceProfile::budget_phone(), &fixture().deployment, &LinkModel::wifi())
        .expect("install")
}

/// Labels `n` Run samples (chosen by `rng`) on the device.
fn label_run_samples(dev: &mut EdgeDevice, n: usize, rng: &mut Rng64) {
    let f = &fixture().run_features;
    let picks = rng.sample_indices(f.rows(), n.min(f.rows()));
    for i in picks {
        dev.label_sample(Activity::Run.label(), Tensor::vector(f.row(i)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// One seed → one sensor-fault schedule: corrupted bytes and fault
    /// counts are identical across independent injectors.
    #[test]
    fn sensor_schedule_is_seed_deterministic(
        seed in 0u64..10_000,
        rate in 0.0f64..1.0,
        windows in 1usize..8,
    ) {
        let mut sim = Simulator::with_seed(seed ^ 0xfeed);
        let originals: Vec<Tensor> =
            (0..windows).map(|_| sim.window(Activity::Walk)).collect();
        let mut a = SensorFaultInjector::new(seed, SensorFaultRates::uniform(rate));
        let mut b = SensorFaultInjector::new(seed, SensorFaultRates::uniform(rate));
        for w in &originals {
            let (mut wa, mut wb) = (w.clone(), w.clone());
            let ka = a.corrupt_window(&mut wa);
            let kb = b.corrupt_window(&mut wb);
            prop_assert_eq!(ka, kb);
            // NaN != NaN, so compare the raw bit patterns.
            let bits = |t: &Tensor| -> Vec<u32> {
                t.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            prop_assert_eq!(bits(&wa), bits(&wb));
        }
        prop_assert_eq!(a.counts(), b.counts());
    }

    /// The assembler quarantines exactly the windows that received a
    /// non-finite spike; finite corruption (dropout/stuck/saturation)
    /// passes through and still yields finite features.
    #[test]
    fn quarantine_count_matches_injected_spikes(
        seed in 0u64..10_000,
        rate in 0.0f64..1.0,
    ) {
        let mut sim = Simulator::with_seed(seed ^ 0xbeef);
        let mut injector = SensorFaultInjector::new(seed, SensorFaultRates::uniform(rate));
        let mut assembler = WindowAssembler::new(WINDOW_LEN, WINDOW_LEN, 1);
        let mut spiked = 0u64;
        let total = 10usize;
        for _ in 0..total {
            let mut w = sim.window(Activity::Run);
            let kinds = injector.corrupt_window(&mut w);
            if kinds.contains(&SensorFaultKind::Spike) {
                spiked += 1;
            }
            for f in assembler.push_block(&w).expect("push") {
                prop_assert!(f.all_finite());
            }
        }
        prop_assert_eq!(assembler.quarantined(), spiked);
        prop_assert_eq!(assembler.emitted(), total as u64 - spiked);
    }

    /// Saturation clamping can never mask a spike, even when both fire on
    /// the same window: the saturation rail is computed with a
    /// NaN-skipping `f32::max` fold, so a NaN spike survives `clamp`
    /// unchanged and an Inf spike yields an Inf rail (a clamp no-op).
    /// Every spiked window therefore keeps at least one non-finite value
    /// for the quarantine check to catch.
    #[test]
    fn saturation_cannot_mask_spikes(seed in 0u64..10_000) {
        let mut rng = Rng64::new(seed.wrapping_mul(77));
        let mut w = Tensor::randn([30, 4], 0.0, 1.0, &mut rng);
        let mut injector = SensorFaultInjector::new(
            seed,
            SensorFaultRates { dropout: 0.0, stuck: 0.0, spike: 1.0, saturation: 1.0 },
        );
        let kinds = injector.corrupt_window(&mut w);
        prop_assert!(kinds.contains(&SensorFaultKind::Spike), "spike rate 1.0 must spike");
        prop_assert!(kinds.contains(&SensorFaultKind::Saturation), "saturation rate 1.0 must clamp");
        prop_assert!(
            w.as_slice().iter().any(|v| !v.is_finite()),
            "saturation clamp erased the spike's non-finite marker"
        );
    }

    /// One seed → one link-fault schedule, including per-attempt costs.
    #[test]
    fn link_schedule_is_seed_deterministic(
        seed in 0u64..10_000,
        rate in 0.0f64..1.0,
    ) {
        let mut a = FlakyLink::new(LinkModel::weak_cellular(), seed, LinkFaultRates::uniform(rate));
        let mut b = FlakyLink::new(LinkModel::weak_cellular(), seed, LinkFaultRates::uniform(rate));
        for _ in 0..20 {
            let (cost_a, res_a) = a.attempt(50_000);
            let (cost_b, res_b) = b.attempt(50_000);
            prop_assert_eq!(cost_a.to_bits(), cost_b.to_bits());
            prop_assert_eq!(format!("{res_a:?}"), format!("{res_b:?}"));
        }
        prop_assert_eq!(a.faults(), b.faults());
    }
}

proptest! {
    // Each case runs a full (fast_test-sized) incremental update; keep the
    // case count low.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// A kill at either stage restores predictions, support set, and
    /// failure accounting exactly; pending samples survive for the retry.
    #[test]
    fn interrupted_update_rolls_back_exactly(
        seed in 0u64..10_000,
        kill_idx in 0usize..UpdateStage::ALL.len(),
    ) {
        let mut dev = device();
        let eval = &fixture().eval_features;
        let before = dev.classify_features(eval).expect("eval before");
        let support_before = fixture().deployment.support.len();
        let mut rng = Rng64::new(seed);
        label_run_samples(&mut dev, 12, &mut rng);
        let pending = dev.pending_samples();
        let status = dev
            .update_faulted(10, Some(UpdateStage::ALL[kill_idx]))
            .expect("faulted update");
        prop_assert_eq!(status, pilote::magneto::UpdateStatus::RolledBack);
        prop_assert_eq!(dev.classify_features(eval).expect("eval after"), before);
        prop_assert_eq!(dev.model_mut().support().len(), support_before);
        prop_assert_eq!(dev.pending_samples(), pending);
        prop_assert_eq!(dev.update_failures(), 1);
        prop_assert!(!dev.is_degraded());
    }

    /// Hostile schedules (high fault rates on every family at once) never
    /// panic the device and never leave non-finite state behind.
    #[test]
    fn device_survives_hostile_schedules(
        seed in 0u64..10_000,
        rate in 0.5f64..1.0,
    ) {
        let mut dev = device();
        let mut sim = Simulator::with_seed(seed ^ 0xace);
        let mut injector = SensorFaultInjector::new(seed, SensorFaultRates::uniform(rate));
        let mut plan = CrashPlan::new(seed, rate);
        for _ in 0..3 {
            let mut session = sim.session(Activity::Still, 4);
            injector.corrupt_window(&mut session);
            let outcomes = dev.stream(&session).expect("stream");
            prop_assert!(outcomes.len() <= 4);
            let mut rng = Rng64::new(seed ^ 0x7e57);
            label_run_samples(&mut dev, 10, &mut rng);
            let kill = plan.next_kill(UpdateStage::ALL.len()).map(|i| UpdateStage::ALL[i]);
            dev.update_faulted(8, kill).expect("update never panics");
            if dev.is_degraded() {
                break;
            }
        }
        prop_assert!(pilote::nn::params_finite(dev.model_mut().net_mut().layers_mut()));
        let acc = dev.accuracy(&Dataset::new(
            fixture().eval_features.clone(),
            vec![Activity::Still.label(); fixture().eval_features.rows()],
        ).expect("dataset")).expect("accuracy");
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}

/// The faulted inference pipeline is bitwise thread-invariant: same seed,
/// same corrupted stream, identical predictions and distances at any
/// thread count.
#[test]
fn faulted_pipeline_is_thread_invariant() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let saved = parallel::current();
    let run_once = |seed: u64| -> Vec<(usize, u32)> {
        let mut dev = device();
        let mut sim = Simulator::with_seed(seed);
        let mut injector = SensorFaultInjector::new(seed, SensorFaultRates::uniform(0.4));
        let mut out = Vec::new();
        for _ in 0..6 {
            let mut w = sim.window(Activity::Walk);
            injector.corrupt_window(&mut w);
            for o in dev.stream(&w).expect("stream") {
                out.push((o.predicted, o.distance.to_bits()));
            }
        }
        out
    };
    for seed in [3u64, 99] {
        parallel::configure(ThreadConfig::serial());
        let serial = run_once(seed);
        for threads in [2usize, 4] {
            parallel::configure(ThreadConfig { num_threads: threads, min_parallel_len: 0 });
            assert_eq!(
                run_once(seed),
                serial,
                "faulted pipeline diverged from serial at {threads} thread(s)"
            );
        }
    }
    parallel::configure(saved);
}

/// Fixed-seed fault matrix — the deterministic sweep `scripts/ci.sh` runs
/// under several `PILOTE_FAULT_SEED` values. Exercises all three fault
/// families end to end at a hostile rate and asserts the resilience
/// invariants (no panic, finite state, exact rollback bookkeeping).
#[test]
fn fixed_seed_matrix() {
    let seed: u64 = std::env::var("PILOTE_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20230328);

    // Link family: a resilient install either succeeds or reports a typed
    // link error — never panics.
    let mut flaky =
        FlakyLink::new(LinkModel::weak_cellular(), seed, LinkFaultRates::uniform(0.6));
    let installed = EdgeDevice::install_resilient(
        DeviceProfile::budget_phone(),
        &fixture().deployment,
        &mut flaky,
        &RetryPolicy::default_edge(),
    );
    assert!(flaky.attempts() >= 1);
    if let Ok(dev) = &installed {
        assert!(!dev.known_classes().is_empty());
    }

    // Sensor + process families on one device until it completes an
    // update, degrades, or exhausts the budget.
    let mut dev = device();
    let mut sim = Simulator::with_seed(seed);
    let mut injector = SensorFaultInjector::new(seed, SensorFaultRates::uniform(0.5));
    let mut plan = CrashPlan::new(seed, 0.7);
    let mut rng = Rng64::new(seed ^ 0x5eed);
    for _ in 0..4 {
        let mut session = sim.session(Activity::Walk, 3);
        injector.corrupt_window(&mut session);
        dev.stream(&session).expect("stream");
        label_run_samples(&mut dev, 10, &mut rng);
        let kill = plan.next_kill(UpdateStage::ALL.len()).map(|i| UpdateStage::ALL[i]);
        let status = dev.update_faulted(8, kill).expect("update");
        if matches!(status, pilote::magneto::UpdateStatus::Degraded) {
            assert!(dev.is_degraded());
            assert_eq!(dev.pending_samples(), 0);
            break;
        }
    }
    assert!(pilote::nn::params_finite(dev.model_mut().net_mut().layers_mut()));
}
