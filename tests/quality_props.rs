//! Property and integration tests for the model-quality observability
//! layer (`docs/QUALITY.md`):
//!
//! * **rollup conservation**: [`TelemetryRollup`] counter totals equal the
//!   sum of the per-device snapshot counters, for any set of devices;
//! * **merge algebra**: [`HistogramSnapshot::merge`] is commutative and
//!   associative (so the rollup result is independent of upload order),
//!   and totals are conserved — NaN observations included;
//! * **prefix queries**: [`Snapshot::counters_with_prefix`] selects
//!   exactly the namespaced counters a real edge workload produces;
//! * **kill switch**: with telemetry disabled, device snapshots collapse
//!   to [`Snapshot::default()`] while standalone histogram accumulators
//!   (device behaviour, not telemetry) keep recording.
//!
//! The registry and the `PILOTE_OBS` switch are process-global, so the
//! tests that touch them serialise on [`OBS_LOCK`], same pattern as
//! `tests/parallel_props.rs` uses for [`ThreadConfig`].

use pilote::magneto::{Deployment, TelemetryRollup};
use pilote::obs::{HistogramSnapshot, Snapshot};
use pilote::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Small fixed name pool so generated devices share counter names (the
/// interesting case for summation).
const NAMES: [&str; 4] = [
    "edge.inference",
    "edge.batch_served",
    "edge.update_committed",
    "fleet.session",
];

const BOUNDS: [f64; 4] = [0.1, 1.0, 10.0, 100.0];

/// Decodes one generated `u64` into a (counter name, increment) pair:
/// low bits pick the name, the rest is the count.
fn decode_counter(word: u64) -> (&'static str, u64) {
    (NAMES[(word % NAMES.len() as u64) as usize], word / NAMES.len() as u64)
}

/// Maps the tails of the generated float range onto the special values
/// the histogram must keep honest books for (the vendored proptest
/// stand-in has no `prop_oneof`, so specials are encoded in-band).
fn decode_margin(value: f64) -> f64 {
    if value > 450.0 {
        f64::NAN
    } else if value < -40.0 {
        f64::INFINITY
    } else {
        value
    }
}

fn snapshot_from(counter_words: &[u64], hist_values: &[f64]) -> Snapshot {
    let mut snap = Snapshot {
        enabled: true,
        ..Snapshot::default()
    };
    for &word in counter_words {
        let (name, value) = decode_counter(word);
        *snap.counters.entry(name.to_string()).or_insert(0) += value;
    }
    let mut hist = HistogramSnapshot::with_bounds(&BOUNDS);
    for &v in hist_values {
        hist.record(decode_margin(v));
    }
    snap.histograms.insert("quality.margins".to_string(), hist);
    snap
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Rollup counters are exactly the per-device sums, and histogram
    /// totals (NaN included) are conserved across the merge.
    #[test]
    fn rollup_counter_totals_equal_per_device_sums(
        device_counters in prop::collection::vec(
            prop::collection::vec(0u64..4000, 0..6),
            1..8,
        ),
        device_margins in prop::collection::vec(
            prop::collection::vec(-50.0f64..500.0, 0..8),
            1..8,
        ),
    ) {
        let empty: Vec<f64> = Vec::new();
        let snapshots: Vec<Snapshot> = device_counters
            .iter()
            .enumerate()
            .map(|(i, counters)| {
                snapshot_from(counters, device_margins.get(i).unwrap_or(&empty))
            })
            .collect();

        let mut rollup = TelemetryRollup::new();
        for snap in &snapshots {
            rollup.merge_snapshot(snap).expect("bounds all match");
        }
        prop_assert_eq!(rollup.devices, snapshots.len());

        let mut expected: BTreeMap<String, u64> = BTreeMap::new();
        for snap in &snapshots {
            for (name, value) in &snap.counters {
                *expected.entry(name.clone()).or_insert(0) += value;
            }
        }
        prop_assert_eq!(&rollup.counters, &expected);

        let merged = &rollup.histograms["quality.margins"];
        let expected_total: u64 = snapshots
            .iter()
            .map(|s| s.histograms["quality.margins"].total())
            .sum();
        prop_assert_eq!(merged.total(), expected_total);
        let expected_nan: u64 = snapshots
            .iter()
            .map(|s| s.histograms["quality.margins"].nan)
            .sum();
        prop_assert_eq!(merged.nan, expected_nan);
    }

    /// Histogram merge is commutative and associative, so the rollup is
    /// independent of device upload order.
    #[test]
    fn histogram_merge_is_commutative_and_associative(
        a_vals in prop::collection::vec(-50.0f64..500.0, 0..10),
        b_vals in prop::collection::vec(-50.0f64..500.0, 0..10),
        c_vals in prop::collection::vec(-50.0f64..500.0, 0..10),
    ) {
        let build = |values: &[f64]| {
            let mut h = HistogramSnapshot::with_bounds(&BOUNDS);
            for &v in values {
                h.record(decode_margin(v));
            }
            h
        };
        let (a, b, c) = (&build(&a_vals), &build(&b_vals), &build(&c_vals));

        let ab = a.merge(b).expect("same bounds");
        let ba = b.merge(a).expect("same bounds");
        prop_assert_eq!(&ab, &ba);

        let ab_c = ab.merge(c).expect("same bounds");
        let bc = b.merge(c).expect("same bounds");
        let a_bc = a.merge(&bc).expect("same bounds");
        prop_assert_eq!(&ab_c, &a_bc);
    }
}

/// Mismatched bucket bounds must surface as an error, never silently
/// mis-merge — both directly and through the rollup.
#[test]
fn mismatched_bounds_are_rejected() {
    let a = HistogramSnapshot::with_bounds(&BOUNDS);
    let b = HistogramSnapshot::with_bounds(&[1.0, 2.0]);
    assert!(a.merge(&b).is_none());

    let mut snap_a = Snapshot {
        enabled: true,
        ..Snapshot::default()
    };
    snap_a.histograms.insert("quality.margins".into(), a);
    let mut snap_b = Snapshot {
        enabled: true,
        ..Snapshot::default()
    };
    snap_b.histograms.insert("quality.margins".into(), b);

    let mut rollup = TelemetryRollup::new();
    rollup.merge_snapshot(&snap_a).expect("first merge sets bounds");
    let err = rollup.merge_snapshot(&snap_b).expect_err("bounds differ");
    assert!(err.to_string().contains("quality.margins"));
}

/// A pre-trained deployment for the device-level tests, kept tiny: the
/// telemetry path under test is the same at any model size.
fn deployment() -> (Deployment, Simulator, pilote::har_data::preprocess::Normalizer) {
    let mut sim = Simulator::with_seed(1203);
    let (corpus, norm) = generate_features(
        &mut sim,
        &[(Activity::Still, 40), (Activity::Walk, 40)],
    )
    .expect("simulate");
    let server = CloudServer::new(corpus, norm.clone(), PiloteConfig::fast_test(1203));
    let old = [Activity::Still.label(), Activity::Walk.label()];
    let (deployment, _) = server.pretrain_and_package(&old, 10).expect("package");
    (deployment, sim, norm)
}

/// `counters_with_prefix` over a real edge workload: the `edge.`
/// namespace holds exactly the device-side counters and nothing else.
#[test]
fn counters_with_prefix_selects_edge_namespace_of_a_real_workload() {
    let _guard = OBS_LOCK.lock().expect("obs lock");
    let was = pilote::obs::enabled();
    pilote::obs::set_enabled(true);

    let (deployment, mut sim, _) = deployment();
    let mut device = EdgeDevice::install(
        DeviceProfile::flagship_phone(),
        &deployment,
        &LinkModel::wifi(),
    )
    .expect("install");
    let session = sim.session(Activity::Walk, 4);
    device.stream(&session).expect("stream");

    let snap = device.telemetry_snapshot();
    let edge: Vec<(&str, u64)> = snap.counters_with_prefix("edge.").collect();
    assert!(
        edge.iter().any(|&(name, count)| name == "edge.inference" && count == 4),
        "edge namespace must hold the inference counter: {edge:?}"
    );
    assert!(
        edge.iter().all(|&(name, _)| name.starts_with("edge.")),
        "prefix query leaked foreign names: {edge:?}"
    );
    assert_eq!(
        edge.len(),
        snap.counters.len(),
        "a device snapshot is all edge-namespaced"
    );
    assert_eq!(snap.counters_with_prefix("fleet.").count(), 0);

    pilote::obs::set_enabled(was);
}

/// Kill switch: device telemetry collapses to `Snapshot::default()`, but
/// standalone histogram accumulators — device behaviour, not telemetry —
/// keep recording, and gauges/counters silently no-op instead of
/// poisoning later reads.
#[test]
fn kill_switch_yields_default_snapshots_but_not_dead_devices() {
    let _guard = OBS_LOCK.lock().expect("obs lock");
    let was = pilote::obs::enabled();
    pilote::obs::set_enabled(false);

    let (deployment, mut sim, _) = deployment();
    let mut device = EdgeDevice::install(
        DeviceProfile::flagship_phone(),
        &deployment,
        &LinkModel::wifi(),
    )
    .expect("install");
    let session = sim.session(Activity::Still, 3);
    let outcomes = device.stream(&session).expect("stream");
    assert_eq!(outcomes.len(), 3, "inference must not depend on telemetry");

    let snap = device.telemetry_snapshot();
    assert_eq!(snap, Snapshot::default(), "disabled telemetry must be empty");
    assert!(!snap.enabled);

    // Standalone accumulators are not registry-gated.
    let mut hist = HistogramSnapshot::with_bounds(&BOUNDS);
    hist.record(0.5);
    hist.record(f64::NAN);
    assert_eq!(hist.total(), 2);
    assert_eq!(hist.nan, 1);

    // Registry handles no-op cleanly while disabled.
    pilote::obs::counter("quality_props.noop").inc();
    let global = pilote::obs::snapshot();
    assert!(!global.enabled);
    assert!(global.counters.is_empty());

    pilote::obs::set_enabled(was);
}
