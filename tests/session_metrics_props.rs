//! Property and integration tests for the session-level continual-learning
//! metrics layer (`docs/METRICS.md`):
//!
//! * **fold correctness**: for arbitrary matrices, every derived metric in
//!   [`SessionSummary`] equals an explicit reference recomputation from the
//!   raw `R[i][j]` cells — average-accuracy curve, forgetting curve, BWT
//!   and FWT, sentinel skipping included;
//! * **recorder integration**: a quality-monitored [`EdgeDevice`] stamps a
//!   matrix whose diagonal matches the accuracy recomputed from the
//!   device's own probe predictions;
//! * **rollup merge**: [`ScenarioRollup`] fleet curves equal the
//!   hand-computed position-wise mean / nearest-rank percentile over the
//!   per-device curves;
//! * **wire round-trip**: the `PWM1` codec reconstructs a recorded matrix
//!   bit-for-bit;
//! * **thread invariance**: the whole record path — train, probe, stamp —
//!   serialises byte-identically at 1 and 4 threads ([`ThreadConfig`] is
//!   process-wide, so those tests serialise on [`CONFIG_LOCK`], same
//!   pattern as `tests/parallel_props.rs`).

use pilote::magneto::wire;
use pilote::magneto::Deployment;
use pilote::prelude::*;
use pilote::tensor::parallel::{self, ThreadConfig};
use proptest::prelude::*;
use std::sync::Mutex;

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// Decodes a generated cell: values above 1.0 become the `-1.0`
/// unmeasured sentinel (the vendored proptest stand-in has no
/// `prop_oneof`, so specials are encoded in-band).
fn decode_cell(v: f32) -> f32 {
    if v > 1.0 {
        -1.0
    } else {
        v
    }
}

/// Builds a matrix from generated parts: `cells` is row-major with one
/// value per (session, task); `learned_at[j]` is the session at which task
/// `j` becomes known (values past the last row mean "never").
fn build_matrix(sessions: usize, cells: &[f32], learned_at: &[usize]) -> AccuracyMatrix {
    let tasks: Vec<TaskGroup> = learned_at
        .iter()
        .enumerate()
        .map(|(j, _)| TaskGroup::new(format!("task{j}"), &[j]))
        .collect();
    let width = tasks.len();
    let mut m = AccuracyMatrix::new(tasks);
    for i in 0..sessions {
        let accuracies: Vec<f32> =
            (0..width).map(|j| decode_cell(cells[i * width + j])).collect();
        let known: Vec<bool> = learned_at.iter().map(|&at| i >= at).collect();
        m.record(i as u64 + 1, accuracies, known);
    }
    m
}

/// Reference `learned(j)`: first row with the known flag set.
fn ref_learned(m: &AccuracyMatrix, j: usize) -> Option<usize> {
    (0..m.sessions()).find(|&i| m.rows()[i].known[j])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every metric in `summary()` equals an explicit reference fold over
    /// the raw matrix cells.
    #[test]
    fn summary_matches_reference_recomputation(
        sessions in 1usize..6,
        width in 1usize..4,
        raw_cells in prop::collection::vec(0.0f32..1.3, 24..25),
        raw_learned in prop::collection::vec(0usize..8, 4..5),
    ) {
        let cells = &raw_cells[..sessions * width];
        let learned_at = &raw_learned[..width];
        let m = build_matrix(sessions, cells, learned_at);
        let s = m.summary();
        let last = sessions - 1;

        // Average-accuracy curve: mean over known, measured tasks per row.
        for i in 0..sessions {
            let vals: Vec<f64> = (0..width)
                .filter(|&j| m.rows()[i].known[j] && m.at(i, j) >= 0.0)
                .map(|j| f64::from(m.at(i, j)))
                .collect();
            let expected = if vals.is_empty() {
                -1.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            prop_assert!((s.average_accuracy_curve[i] - expected).abs() < 1e-12);
        }
        prop_assert_eq!(s.average_accuracy, *s.average_accuracy_curve.last().unwrap());

        // Forgetting curve: drop from each previously-learned task's own
        // best, skipping sentinel cells on either side of the subtraction.
        for i in 0..sessions {
            let mut drops = Vec::new();
            for j in 0..width {
                let Some(learned) = ref_learned(&m, j) else { continue };
                if learned >= i || m.at(i, j) < 0.0 {
                    continue;
                }
                let best = (learned..i)
                    .map(|k| m.at(k, j))
                    .filter(|&a| a >= 0.0)
                    .fold(f32::NEG_INFINITY, f32::max);
                if best.is_finite() {
                    drops.push(f64::from(best) - f64::from(m.at(i, j)));
                }
            }
            let expected = if drops.is_empty() {
                0.0
            } else {
                drops.iter().sum::<f64>() / drops.len() as f64
            };
            prop_assert!((s.forgetting_curve[i] - expected).abs() < 1e-12);
        }
        prop_assert_eq!(s.final_forgetting, *s.forgetting_curve.last().unwrap());

        // BWT: final minus own-session accuracy over tasks learned before
        // the final session.
        let mut bwt = Vec::new();
        for j in 0..width {
            if let Some(learned) = ref_learned(&m, j) {
                if learned < last && m.at(learned, j) >= 0.0 && m.at(last, j) >= 0.0 {
                    bwt.push(f64::from(m.at(last, j)) - f64::from(m.at(learned, j)));
                }
            }
        }
        match s.backward_transfer {
            None => prop_assert!(bwt.is_empty()),
            Some(v) => {
                prop_assert!(!bwt.is_empty());
                prop_assert!((v - bwt.iter().sum::<f64>() / bwt.len() as f64).abs() < 1e-12);
            }
        }

        // FWT: pre-learning accuracy of tasks learned after session 0.
        let mut fwt = Vec::new();
        for j in 0..width {
            if let Some(learned) = ref_learned(&m, j) {
                if learned > 0 && m.at(learned - 1, j) >= 0.0 {
                    fwt.push(f64::from(m.at(learned - 1, j)));
                }
            }
        }
        match s.forward_transfer {
            None => prop_assert!(fwt.is_empty()),
            Some(v) => {
                prop_assert!(!fwt.is_empty());
                prop_assert!((v - fwt.iter().sum::<f64>() / fwt.len() as f64).abs() < 1e-12);
            }
        }
    }

    /// Fleet rollup curves are exactly the position-wise mean and
    /// nearest-rank percentile of the per-device curves.
    #[test]
    fn rollup_curves_merge_per_device_curves(
        device_sessions in prop::collection::vec(1usize..6, 1..5),
        raw_cells in prop::collection::vec(0.0f32..1.3, 30..31),
        p in 0.0f64..100.0,
    ) {
        let mut rollup = ScenarioRollup::new();
        let mut summaries = Vec::new();
        for (d, &sessions) in device_sessions.iter().enumerate() {
            // Two tasks: one known from session 0, one learned at row 1.
            let offset = (d * 7) % 18;
            let m = build_matrix(sessions, &raw_cells[offset..offset + sessions * 2], &[0, 1]);
            rollup.merge_matrix(&m);
            summaries.push(m.summary());
        }
        prop_assert_eq!(rollup.devices(), summaries.len());
        prop_assert_eq!(&rollup.per_device, &summaries);

        let longest = summaries.iter().map(|s| s.forgetting_curve.len()).max().unwrap();
        let mean = rollup.mean_forgetting_curve();
        let pct = rollup.percentile_forgetting_curve(p);
        prop_assert_eq!(mean.len(), longest);
        prop_assert_eq!(pct.len(), longest);
        for i in 0..longest {
            let mut at_i: Vec<f64> = summaries
                .iter()
                .filter_map(|s| s.forgetting_curve.get(i).copied())
                .collect();
            let expected_mean = at_i.iter().sum::<f64>() / at_i.len() as f64;
            prop_assert!((mean[i] - expected_mean).abs() < 1e-12);

            at_i.sort_unstable_by(f64::total_cmp);
            let rank = ((p / 100.0) * at_i.len() as f64).ceil() as usize;
            prop_assert_eq!(pct[i], at_i[rank.clamp(1, at_i.len()) - 1]);
        }
    }

    /// `PWM1` reconstructs any recorded matrix bit-for-bit, and the byte
    /// budget charged to the link model is the encoded length.
    #[test]
    fn wire_codec_round_trips_generated_matrices(
        sessions in 1usize..5,
        width in 1usize..4,
        raw_cells in prop::collection::vec(0.0f32..1.3, 20..21),
        raw_learned in prop::collection::vec(0usize..6, 4..5),
    ) {
        let m = build_matrix(sessions, &raw_cells[..sessions * width], &raw_learned[..width]);
        let bytes = wire::encode_session_matrix(&m);
        prop_assert_eq!(wire::session_matrix_wire_bytes(&m), bytes.len() as u64);
        let back = wire::decode_session_matrix(&bytes).expect("round trip");
        prop_assert_eq!(&back, &m);
    }
}

/// A two-class deployment plus a three-class probe (Run held out as the
/// increment), small enough for the integration tests below.
fn scenario_fixture() -> (Deployment, Dataset, Dataset) {
    let mut sim = Simulator::with_seed(4711);
    let (corpus, norm) = generate_features(
        &mut sim,
        &[(Activity::Still, 40), (Activity::Walk, 40), (Activity::Run, 40)],
    )
    .expect("simulate");
    let mut rng = Rng64::new(1);
    let (train, test) = corpus.stratified_split(0.3, &mut rng).expect("split");
    let base = [Activity::Still.label(), Activity::Walk.label()];
    let server = CloudServer::new(
        train.filter_classes(&base).expect("base"),
        norm,
        PiloteConfig::fast_test(4711),
    );
    let (deployment, _) = server.pretrain_and_package(&base, 10).expect("package");
    let new = train.filter_classes(&[Activity::Run.label()]).expect("run pool");
    (deployment, test, new)
}

/// Runs the class-incremental schedule on one device and returns it with
/// its matrix stamped: baseline row, then one row for the Run update.
fn run_schedule(deployment: &Deployment, probe: &Dataset, new: &Dataset) -> EdgeDevice {
    let base = [Activity::Still.label(), Activity::Walk.label()];
    let tasks = vec![
        TaskGroup::new("base", &base),
        TaskGroup::new("run", &[Activity::Run.label()]),
    ];
    let mut device =
        EdgeDevice::install(DeviceProfile::flagship_phone(), deployment, &LinkModel::wifi())
            .expect("install");
    device
        .arm_quality_monitor_with_sessions(
            probe.clone(),
            &base,
            QualityThresholds::default(),
            tasks,
        )
        .expect("arm");
    for i in 0..new.features.rows() {
        device.label_sample(Activity::Run.label(), Tensor::vector(new.features.row(i)));
    }
    device.update(10).expect("update");
    device
}

/// The stamped diagonal equals the accuracy recomputed from the device's
/// own probe predictions, and the known flags follow the schedule.
#[test]
fn device_matrix_diagonal_matches_recomputed_probe_accuracy() {
    let _guard = CONFIG_LOCK.lock().expect("config lock");
    let (deployment, probe, new) = scenario_fixture();
    let mut device = run_schedule(&deployment, &probe, &new);

    let matrix = device.session_matrix().expect("recording armed").clone();
    assert_eq!(matrix.sessions(), 2, "baseline row + one update row");
    assert_eq!(matrix.rows()[0].known, vec![true, false], "Run unknown at baseline");
    assert_eq!(matrix.rows()[1].known, vec![true, true]);
    assert_eq!(matrix.learned_session(1), Some(1));

    // Recompute the Run column of the final row from live predictions:
    // the model has not changed since the stamp, so they must agree
    // exactly.
    let predicted = device.classify_features(&probe.features).expect("classify");
    let run = Activity::Run.label();
    let (mut correct, mut total) = (0usize, 0usize);
    for (row, &label) in probe.labels.iter().enumerate() {
        if label == run {
            total += 1;
            if predicted[row] == run {
                correct += 1;
            }
        }
    }
    assert!(total > 0, "probe must hold Run rows");
    let expected = correct as f32 / total as f32;
    assert_eq!(matrix.at(1, 1), expected, "diagonal cell = recomputed probe accuracy");
    assert_eq!(matrix.own_task_accuracy(1), Some(expected));

    // Baseline row: an NCM classifier never predicts an unknown label,
    // so pre-learning Run accuracy is exactly zero (the FWT baseline).
    assert_eq!(matrix.at(0, 1), 0.0);
}

/// The full record path — train, probe, stamp, serialise — is
/// byte-identical at 1 and 4 threads.
#[test]
fn session_matrices_are_thread_invariant() {
    let _guard = CONFIG_LOCK.lock().expect("config lock");
    let (deployment, probe, new) = scenario_fixture();
    let saved = parallel::current();

    let run_at = |threads: ThreadConfig| -> String {
        parallel::configure(threads);
        let device = run_schedule(&deployment, &probe, &new);
        let matrix = device.session_matrix().expect("recording armed");
        let mut rollup = ScenarioRollup::new();
        rollup.merge_matrix(matrix);
        serde_json::to_string(&(matrix, &rollup.per_device, rollup.mean_forgetting_curve()))
            .expect("serialise")
    };

    let serial = run_at(ThreadConfig::serial());
    let parallel4 = run_at(ThreadConfig { num_threads: 4, min_parallel_len: 0 });
    assert_eq!(serial, parallel4, "matrix JSON diverged between 1 and 4 threads");

    parallel::configure(saved);
}

/// The wire codec rejects a corrupted known flag with a typed error, and
/// an undersized payload never panics.
#[test]
fn wire_codec_rejects_corruption_with_typed_errors() {
    let m = build_matrix(2, &[0.5, 0.25, 0.75, 1.0], &[0, 1]);
    let mut bytes = wire::encode_session_matrix(&m);

    // Each row tails with (flag, f32) per task; flip the final flag byte.
    let flag_at = bytes.len() - 5;
    bytes[flag_at] = 9;
    assert!(wire::decode_session_matrix(&bytes).is_err(), "bad flag must be typed");

    let bytes = wire::encode_session_matrix(&m);
    for cut in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(wire::decode_session_matrix(&bytes[..cut]).is_err());
    }
}
