//! Property-based tests of the binary wire codec (`docs/WIRE.md`):
//!
//! * **F32 round payloads are lossless**: a full payload decodes to the
//!   encoded checkpoint bitwise, and a delta payload applied to the
//!   shared base reconstructs the target bitwise;
//! * **unchanged checkpoints are free**: a delta of a checkpoint against
//!   itself decodes bitwise at *every* precision (a zero diff quantises
//!   exactly) and costs fewer bytes than the full payload;
//! * **quantised deltas are bounded**: an i8 delta reconstructs the
//!   target within the per-column affine half-step of the diff — the
//!   error is set by the *diff's* range, not the weights' range;
//! * **staleness is typed**: a delta against a mismatched generation, a
//!   structurally different base, or no base at all is a typed
//!   [`CodecError`], never a silent corruption;
//! * **malformed bytes are typed**: truncating any payload yields an
//!   error, never a panic.
//!
//! Sibling of `tests/fleet_props.rs`, which covers the fleet layer that
//! moves these payloads.

use pilote::magneto::wire::{self, CodecError};
use pilote::magneto::WireConfig;
use pilote::edge_sim::WirePrecision;
use pilote::nn::persist::CHECKPOINT_VERSION;
use pilote::nn::{Checkpoint, DeltaError};
use pilote::tensor::{Rng64, Tensor};
use proptest::prelude::*;

/// Even sizes become a rank-2 `[n/2, 2]` layer (per-column quantisation),
/// odd sizes a rank-1 `[n]` layer (flattened-column quantisation), so
/// both `rank2_view` paths of the codec are exercised.
fn shape_for(size: usize) -> Vec<usize> {
    if size.is_multiple_of(2) {
        vec![size / 2, 2]
    } else {
        vec![size]
    }
}

/// A checkpoint with layers of the given sizes and seeded random values.
fn checkpoint_from(layout: &[usize], seed: u64) -> Checkpoint {
    let mut rng = Rng64::new(seed ^ 0x3172e);
    let params: Vec<Tensor> = layout
        .iter()
        .map(|&n| Tensor::randn(shape_for(n), 0.0, 2.0, &mut rng))
        .collect();
    Checkpoint {
        version: CHECKPOINT_VERSION,
        shapes: params.iter().map(|p| p.shape().dims().to_vec()).collect(),
        params,
    }
}

/// `base` with the layers selected by `mask` re-drawn from `seed` (the
/// unselected layers stay bitwise identical, so delta payloads skip them).
fn perturbed(base: &Checkpoint, mask: u64, seed: u64) -> Checkpoint {
    let mut rng = Rng64::new(seed ^ 0x7a26e7);
    let params: Vec<Tensor> = base
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if mask & (1 << i) != 0 {
                Tensor::randn(p.shape().dims().to_vec(), 0.0, 2.0, &mut rng)
            } else {
                p.clone()
            }
        })
        .collect();
    Checkpoint { version: base.version, shapes: base.shapes.clone(), params }
}

fn assert_bitwise_eq(a: &Checkpoint, b: &Checkpoint, context: &str) {
    assert_eq!(a.shapes, b.shapes, "{context}: shapes diverged");
    assert_eq!(a.params.len(), b.params.len(), "{context}: layer count diverged");
    for (i, (x, y)) in a.params.iter().zip(&b.params).enumerate() {
        let xb: Vec<u32> = x.as_slice().iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "{context}: layer {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn full_f32_round_payload_is_bitwise(
        layout in prop::collection::vec(1usize..13, 1..5),
        seed in 0u64..1_000_000,
    ) {
        let ckpt = checkpoint_from(&layout, seed);
        let bytes = wire::encode_round_full(&ckpt, WirePrecision::F32).expect("encode");
        let back = wire::decode_round(&bytes, None).expect("decode");
        assert_bitwise_eq(&back, &ckpt, "full f32");
    }

    #[test]
    fn delta_f32_reconstructs_the_target_bitwise(
        layout in prop::collection::vec(1usize..13, 1..5),
        base_seed in 0u64..1_000_000,
        target_seed in 0u64..1_000_000,
        mask in 0u64..32,
        generation in 0u64..10_000,
    ) {
        let base = checkpoint_from(&layout, base_seed);
        let target = perturbed(&base, mask, target_seed);
        let bytes = wire::encode_round_delta(&base, &target, generation, WirePrecision::F32)
            .expect("encode");
        let back = wire::decode_round(&bytes, Some((&base, generation))).expect("decode");
        assert_bitwise_eq(&back, &target, "delta f32");
    }

    #[test]
    fn unchanged_checkpoint_round_trips_bitwise_at_every_precision(
        layout in prop::collection::vec(1usize..13, 1..5),
        seed in 0u64..1_000_000,
        generation in 0u64..10_000,
    ) {
        let ckpt = checkpoint_from(&layout, seed);
        for precision in [WirePrecision::F32, WirePrecision::U16, WirePrecision::I8] {
            let delta = wire::encode_round_delta(&ckpt, &ckpt, generation, precision)
                .expect("encode delta");
            let full = wire::encode_round_full(&ckpt, precision).expect("encode full");
            // A zero diff has an all-None layer list: cheaper than any
            // full payload and exact even when quantised.
            assert!(
                delta.len() < full.len(),
                "{}: no-change delta ({}B) must undercut full ({}B)",
                precision.name(), delta.len(), full.len()
            );
            let back = wire::decode_round(&delta, Some((&ckpt, generation))).expect("decode");
            assert_bitwise_eq(&back, &ckpt, precision.name());
        }
    }

    #[test]
    fn quantised_delta_error_stays_within_the_diff_half_step(
        layout in prop::collection::vec(1usize..13, 1..5),
        base_seed in 0u64..1_000_000,
        target_seed in 0u64..1_000_000,
        mask in 0u64..32,
    ) {
        let base = checkpoint_from(&layout, base_seed);
        let target = perturbed(&base, mask, target_seed);
        let bytes = wire::encode_round_delta(&base, &target, 7, WirePrecision::I8)
            .expect("encode");
        let back = wire::decode_round(&bytes, Some((&base, 7))).expect("decode");
        for (i, ((b, t), d)) in base.params.iter().zip(&target.params).zip(&back.params).enumerate()
        {
            // The codec quantises the diff per column of its rank-2 view
            // (rank-1 layers flatten to one column), so the guaranteed
            // bound is half the per-column affine step of the *diff*.
            let dims = t.shape().dims().to_vec();
            let cols = if dims.len() == 2 { dims[1] } else { 1 };
            let n = t.as_slice().len();
            for c in 0..cols {
                let column: Vec<f32> = (0..n)
                    .filter(|j| j % cols == c)
                    .map(|j| t.as_slice()[j] - b.as_slice()[j])
                    .collect();
                let lo = column.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = column.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let tol = (hi - lo) / 255.0 / 2.0 * 1.01 + 1e-5;
                for j in (0..n).filter(|j| j % cols == c) {
                    let err = (d.as_slice()[j] - t.as_slice()[j]).abs();
                    assert!(
                        err <= tol,
                        "layer {i} col {c} elem {j}: err {err} exceeds half-step {tol}"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_skew_is_a_typed_error(
        layout in prop::collection::vec(1usize..13, 1..5),
        seed in 0u64..1_000_000,
        generation in 0u64..10_000,
        skew in 1u64..50,
    ) {
        let base = checkpoint_from(&layout, seed);
        let target = perturbed(&base, u64::MAX, seed ^ 1);
        let bytes = wire::encode_round_delta(&base, &target, generation, WirePrecision::F32)
            .expect("encode");
        // Receiver committed a different round: typed mismatch, so the
        // sender can fall back to a full payload.
        let skewed = wire::decode_round(&bytes, Some((&base, generation + skew)));
        assert!(
            matches!(skewed, Err(CodecError::Delta(DeltaError::GenerationMismatch { .. }))),
            "skewed generation must be typed, got {skewed:?}"
        );
        // Receiver holds no base at all: the other typed fallback signal.
        assert_eq!(wire::decode_round(&bytes, None).err(), Some(CodecError::MissingBase));
    }

    #[test]
    fn structurally_different_base_is_a_typed_error(
        layout in prop::collection::vec(1usize..13, 2..5),
        seed in 0u64..1_000_000,
    ) {
        let base = checkpoint_from(&layout, seed);
        let target = perturbed(&base, u64::MAX, seed ^ 2);
        let bytes = wire::encode_round_delta(&base, &target, 3, WirePrecision::I8)
            .expect("encode");
        let mut short = base.clone();
        short.params.pop();
        short.shapes.pop();
        let err = wire::decode_round(&bytes, Some((&short, 3)));
        assert!(
            matches!(err, Err(CodecError::Delta(DeltaError::StructureMismatch { .. }))),
            "layer-count mismatch must be typed, got {err:?}"
        );
    }

    #[test]
    fn truncated_payloads_are_typed_errors_not_panics(
        layout in prop::collection::vec(1usize..13, 1..5),
        seed in 0u64..1_000_000,
        cut_per_mille in 0u64..1000,
    ) {
        let base = checkpoint_from(&layout, seed);
        let target = perturbed(&base, u64::MAX, seed ^ 3);
        for bytes in [
            wire::encode_round_full(&target, WirePrecision::I8).expect("full"),
            wire::encode_round_delta(&base, &target, 5, WirePrecision::U16).expect("delta"),
        ] {
            let cut = (bytes.len() as u64 * cut_per_mille / 1000) as usize;
            assert!(
                wire::decode_round(&bytes[..cut], Some((&base, 5))).is_err(),
                "a strict prefix must never decode"
            );
        }
    }
}

/// The default fleet wire config must stay bitwise lossless: swapping the
/// JSON accounting for the codec may change bytes and clocks, but not a
/// single model weight.
#[test]
fn default_wire_config_is_lossless() {
    let cfg = WireConfig::default();
    assert_eq!(cfg.precision, WirePrecision::F32);
    assert!(cfg.delta);
    assert_eq!(cfg.name(), "f32-delta");
}

/// Telemetry snapshots round-trip through the codec and the advertised
/// wire size is the exact encoded length.
#[test]
fn snapshot_codec_round_trips_and_sizes_exactly() {
    let was_enabled = pilote::obs::enabled();
    pilote::obs::reset();
    pilote::obs::set_enabled(true);
    pilote::obs::counter("wire.test_counter").inc();
    pilote::obs::counter("wire.test_counter").inc();
    let snapshot = pilote::obs::snapshot();
    pilote::obs::set_enabled(was_enabled);

    let bytes = wire::encode_snapshot(&snapshot);
    assert_eq!(wire::snapshot_wire_bytes(&snapshot), bytes.len() as u64);
    let back = wire::decode_snapshot(&bytes).expect("decode");
    // Re-encoding the decoded snapshot must reproduce the payload
    // byte-for-byte — the codec has one canonical form.
    assert_eq!(wire::encode_snapshot(&back), bytes);
    assert!(wire::decode_snapshot(&bytes[..bytes.len() - 1]).is_err());
}
