//! The full MAGNETO platform loop (paper §3 + Fig. 2, right side):
//! cloud pre-training → one-time deployment → on-device streaming
//! inference → drift detection → on-device incremental learning →
//! a privacy-preserving federated round across two devices (§7).
//!
//! ```text
//! cargo run --release --example magneto_platform
//! ```

use pilote::har_data::features::extract_batch;
use pilote::magneto::FederatedCoordinator;
use pilote::prelude::*;

fn main() {
    // ---- cloud: collect a campaign, pre-train, package -------------------
    let mut sim = Simulator::with_seed(77);
    let (corpus, normalizer) = generate_features(
        &mut sim,
        &[
            (Activity::Still, 120),
            (Activity::Walk, 120),
            (Activity::Drive, 120),
            (Activity::Run, 120),
        ],
    )
    .expect("simulate campaign");
    let mut cfg = PiloteConfig::paper(77);
    cfg.max_epochs = 8;
    let server = CloudServer::new(corpus.clone(), normalizer.clone(), cfg);
    let old = [Activity::Still.label(), Activity::Walk.label(), Activity::Drive.label()];
    let (deployment, report) = server.pretrain_and_package(&old, 60).expect("pretrain");
    println!(
        "cloud: pre-trained {} epochs; deployment payload {:.2} MB",
        report.epochs.len(),
        deployment.wire_bytes().expect("serialisable") as f64 / 1e6
    );

    // ---- edge: install once over 4G ---------------------------------------
    let link = LinkModel::cellular_4g();
    let mut phone = EdgeDevice::install(DeviceProfile::flagship_phone(), &deployment, &link)
        .expect("install phone");
    let mut watch = EdgeDevice::install(DeviceProfile::budget_phone(), &deployment, &link)
        .expect("install watch");
    println!("edge: installed on {:?} and {:?}", phone.profile().name, watch.profile().name);

    // ---- streaming inference ----------------------------------------------
    let walk_session = sim.session(Activity::Walk, 8);
    let outcomes = phone.stream(&walk_session).expect("stream");
    let correct =
        outcomes.iter().filter(|o| o.predicted == Activity::Walk.label()).count();
    println!("phone: classified {}/{} Walk windows correctly", correct, outcomes.len());

    // ---- drift detection: a never-seen activity appears --------------------
    let walk_raw = sim.raw_dataset(&[(Activity::Walk, 40)]);
    let reference = normalizer
        .transform(&extract_batch(&walk_raw).expect("features"))
        .expect("normalize");
    phone.arm_drift_monitor(&reference, 3.0).expect("arm");
    let run_session = sim.session(Activity::Run, 10);
    phone.stream(&run_session).expect("stream");
    let drift_events = phone
        .log()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, pilote::magneto::EventKind::DriftDetected { .. }))
        .count();
    println!("phone: drift monitor fired {drift_events}× while streaming the unknown activity");

    // ---- on-device incremental learning -------------------------------------
    let run_raw = sim.raw_dataset(&[(Activity::Run, 50)]);
    let run_features = normalizer
        .transform(&extract_batch(&run_raw).expect("features"))
        .expect("normalize");
    for i in 0..run_features.rows() {
        phone.label_sample(Activity::Run.label(), Tensor::vector(run_features.row(i)));
    }
    phone.update(50).expect("incremental update");
    println!(
        "phone: learned '{}' on-device; now knows {:?}",
        Activity::Run,
        phone
            .known_classes()
            .iter()
            .map(|&l| Activity::from_label(l).map(|a| a.name()).unwrap_or("?"))
            .collect::<Vec<_>>()
    );

    // ---- federated round (no data leaves either device) ---------------------
    let mut coordinator = FederatedCoordinator::new();
    // Align class sets first: the watch also learns Run from its own data.
    let watch_run = sim.raw_dataset(&[(Activity::Run, 30)]);
    let watch_features = normalizer
        .transform(&extract_batch(&watch_run).expect("features"))
        .expect("normalize");
    for i in 0..watch_features.rows() {
        watch.label_sample(Activity::Run.label(), Tensor::vector(watch_features.row(i)));
    }
    watch.update(30).expect("watch update");
    coordinator
        .run_round(&mut [&mut phone, &mut watch])
        .expect("federated round");
    println!("federated: round {} complete across 2 devices", coordinator.rounds());

    // ---- final evaluation (device's own normaliser, as on a real phone) -----
    let mut eval_sim = Simulator::with_seed(991);
    let raw_test = eval_sim.raw_dataset(&[
        (Activity::Still, 40),
        (Activity::Walk, 40),
        (Activity::Drive, 40),
        (Activity::Run, 40),
    ]);
    let test_features = normalizer
        .transform(&extract_batch(&raw_test).expect("features"))
        .expect("normalize");
    let test = Dataset::new(test_features, raw_test.labels.clone()).expect("dataset");
    println!(
        "phone accuracy on fresh 4-class data: {:.3}",
        phone.accuracy(&test).expect("eval")
    );
    println!("\nevent log ({} events):", phone.log().events().len());
    for e in phone.log().events().iter().take(5) {
        println!("  t={:8.2}s  {:?}", e.at_seconds, e.kind);
    }
    println!("  …");
}
