//! Multi-step incremental learning: activities arrive one at a time, the
//! way a deployed MAGNETO device would meet them — pre-train on three,
//! then learn 'E-scooter' and later 'Run', tracking forgetting after each
//! step and comparing against the re-trained baseline.
//!
//! ```text
//! cargo run --release --example incremental_har
//! ```

use pilote::core::metrics::forgetting;
use pilote::prelude::*;

fn eval(model: &mut Pilote, test: &Dataset, classes: &[usize]) -> f32 {
    model
        .accuracy(&test.filter_classes(classes).expect("classes"))
        .expect("eval")
}

fn main() {
    let mut sim = Simulator::with_seed(11);
    let (data, _) = generate_features(
        &mut sim,
        &[
            (Activity::Still, 150),
            (Activity::Walk, 150),
            (Activity::Drive, 150),
            (Activity::EScooter, 150),
            (Activity::Run, 150),
        ],
    )
    .expect("simulation");
    let mut rng = Rng64::new(3);
    let (train, test) = data.stratified_split(0.3, &mut rng).expect("split");

    let initial: Vec<usize> =
        [Activity::Still, Activity::Walk, Activity::Drive].iter().map(|a| a.label()).collect();
    let mut cfg = PiloteConfig::paper(11);
    cfg.max_epochs = 10;
    let (model, _) = Pilote::pretrain(
        cfg,
        &train.filter_classes(&initial).expect("initial"),
        100,
        SelectionStrategy::Herding,
    )
    .expect("pretrain");

    let mut pilote = model.clone_model();
    let mut retrained = model.clone_model();
    let mut known = initial.clone();
    println!("pre-trained on {:?}", known);

    for new_activity in [Activity::EScooter, Activity::Run] {
        let new_label = new_activity.label();
        let new_data = train
            .filter_classes(&[new_label])
            .expect("new data")
            .sample_class(new_label, 80, &mut rng)
            .expect("sample");

        let old_pil = eval(&mut pilote, &test, &known);
        let old_ret = eval(&mut retrained, &test, &known);

        pilote.learn_new_class(&new_data, 80).expect("pilote update");
        retrained_update(&mut retrained, &new_data, 80).expect("retrained update");

        known.push(new_label);
        let pil_old_after = eval(&mut pilote, &test, &known[..known.len() - 1]);
        let ret_old_after = eval(&mut retrained, &test, &known[..known.len() - 1]);

        println!("\n=== learned {} (now {} classes) ===", new_activity, known.len());
        println!(
            "  PILOTE    : all-class acc {:.3}, old-class acc {:.3}, forgetting {:+.3}",
            eval(&mut pilote, &test, &known),
            pil_old_after,
            forgetting(old_pil, pil_old_after),
        );
        println!(
            "  Re-trained: all-class acc {:.3}, old-class acc {:.3}, forgetting {:+.3}",
            eval(&mut retrained, &test, &known),
            ret_old_after,
            forgetting(old_ret, ret_old_after),
        );
    }

    println!("\nsupport set now holds {} exemplars across {} classes", pilote.support().len(), known.len());
}
