//! The extreme-edge question (Q3 / Figure 7): how few new-class samples
//! does PILOTE need? Sweeps the number of 'Run' exemplars from 5 to 100
//! and prints accuracy for PILOTE vs the re-trained baseline — watch the
//! gap open up below ~50 samples.
//!
//! ```text
//! cargo run --release --example extreme_edge
//! ```

use pilote::prelude::*;

fn main() {
    let mut sim = Simulator::with_seed(17);
    let (data, _) = generate_features(
        &mut sim,
        &[
            (Activity::Still, 150),
            (Activity::Walk, 150),
            (Activity::Drive, 150),
            (Activity::EScooter, 150),
            (Activity::Run, 150),
        ],
    )
    .expect("simulation");
    let mut rng = Rng64::new(5);
    let (train, test) = data.stratified_split(0.3, &mut rng).expect("split");

    let old: Vec<usize> = [Activity::Still, Activity::Walk, Activity::Drive, Activity::EScooter]
        .iter()
        .map(|a| a.label())
        .collect();
    let mut cfg = PiloteConfig::paper(17);
    cfg.max_epochs = 10;
    let (base, _) = Pilote::pretrain(
        cfg,
        &train.filter_classes(&old).expect("old"),
        100,
        SelectionStrategy::Herding,
    )
    .expect("pretrain");
    let mut warm = base.clone_model();
    let warm_acc = warm
        .accuracy(&test.filter_classes(&old).expect("old test"))
        .expect("eval");
    println!("warm start: old-class accuracy {warm_acc:.3}\n");
    println!("{:>12} {:>10} {:>10}", "Run samples", "PILOTE", "Re-trained");

    let run_pool = train.filter_classes(&[Activity::Run.label()]).expect("run pool");
    for n in [5usize, 10, 20, 30, 50, 100] {
        let new_data =
            run_pool.sample_class(Activity::Run.label(), n, &mut rng).expect("sample");

        let mut pilote = base.clone_model();
        pilote.learn_new_class(&new_data, n).expect("pilote");
        let pil_acc = pilote.accuracy(&test).expect("eval");

        let mut retr = base.clone_model();
        retrained_update(&mut retr, &new_data, n).expect("retrained");
        let ret_acc = retr.accuracy(&test).expect("eval");

        println!("{n:>12} {pil_acc:>10.3} {ret_acc:>10.3}");
    }
    println!("\n(the paper's Fig. 7: PILOTE reaches ~90% with 30 exemplars and dominates below 50)");
}
