//! Quickstart: the full PILOTE lifecycle in ~60 lines.
//!
//! 1. Simulate a small sensor campaign (cloud side).
//! 2. Pre-train the embedding on four activities.
//! 3. A new activity ('Run') appears on the edge — learn it incrementally
//!    without forgetting the old ones.
//! 4. Classify and inspect the confusion matrix.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pilote::prelude::*;

fn main() {
    // ---- 1. simulated campaign -----------------------------------------
    let mut sim = Simulator::with_seed(42);
    let (data, _normalizer) = generate_features(
        &mut sim,
        &[
            (Activity::Still, 150),
            (Activity::Walk, 150),
            (Activity::Drive, 150),
            (Activity::EScooter, 150),
            (Activity::Run, 150),
        ],
    )
    .expect("simulation");
    let mut rng = Rng64::new(7);
    let (train, test) = data.stratified_split(0.3, &mut rng).expect("split");
    println!("simulated {} train / {} test windows of {} features", train.len(), test.len(), FEATURE_DIM);

    // ---- 2. cloud pre-training on four activities -----------------------
    let old_classes: Vec<usize> = [Activity::Still, Activity::Walk, Activity::Drive, Activity::EScooter]
        .iter()
        .map(|a| a.label())
        .collect();
    let old_train = train.filter_classes(&old_classes).expect("old classes");

    let mut cfg = PiloteConfig::paper(42);
    cfg.max_epochs = 10;
    let (mut model, report) =
        Pilote::pretrain(cfg, &old_train, 100, SelectionStrategy::Herding).expect("pretrain");
    println!(
        "pre-trained in {} epochs ({:.1}s): old-class test accuracy {:.3}",
        report.epochs.len(),
        report.total_seconds(),
        model
            .accuracy(&test.filter_classes(&old_classes).expect("old test"))
            .expect("eval")
    );

    // ---- 3. the edge sees a new activity --------------------------------
    let run_samples = train
        .filter_classes(&[Activity::Run.label()])
        .expect("run data")
        .sample_class(Activity::Run.label(), 100, &mut rng)
        .expect("sample");
    println!("edge update with {} 'Run' samples …", run_samples.len());
    let update = model.learn_new_class(&run_samples, 100).expect("edge update");
    println!(
        "updated in {} epochs ({:.1}s, {:.2}s/epoch)",
        update.epochs.len(),
        update.total_seconds(),
        update.total_seconds() / update.epochs.len().max(1) as f64
    );

    // ---- 4. evaluate -----------------------------------------------------
    let accuracy = model.accuracy(&test).expect("eval");
    println!("five-class test accuracy: {accuracy:.3}");

    let labels: Vec<usize> = Activity::ALL.iter().map(|a| a.label()).collect();
    let names: Vec<String> = Activity::ALL.iter().map(|a| a.name().to_string()).collect();
    let predictions = model.predict(&test.features).expect("predict");
    let confusion = ConfusionMatrix::from_predictions(&labels, &names, &predictions, &test.labels);
    println!("\n{confusion}");
    println!("macro-F1: {:.3}", confusion.macro_f1());
}
