//! Edge resource budgeting (Q2): how many exemplars fit on a device, what
//! does quantisation buy, and what does an update cost in device time and
//! cloud bandwidth?
//!
//! ```text
//! cargo run --release --example edge_budget
//! ```

use pilote::edge_sim::memory::{model_bytes, ValueWidth};
use pilote::edge_sim::quantize::{Quantization, QuantizedMatrix};
use pilote::edge_sim::link::cloud_vs_edge;
use pilote::har_data::sensors::{CHANNELS, WINDOW_LEN};
use pilote::prelude::*;

fn main() {
    // ---- exemplar storage across devices --------------------------------
    println!("== Support-set storage ==");
    let budget = MemoryBudget::new(200 * 5, FEATURE_DIM, ValueWidth::F32);
    println!(
        "200 exemplars/class × 5 classes × {FEATURE_DIM} features (f32): {:.0} KB",
        budget.total_bytes() as f64 / 1000.0
    );
    for device in
        [DeviceProfile::flagship_phone(), DeviceProfile::budget_phone(), DeviceProfile::wearable()]
    {
        let max = budget.exemplars_fitting(device.storage_bytes / 100); // allow 1% of storage
        println!(
            "  {:<15} 1% of storage holds {:>8} exemplars",
            device.name, max
        );
    }

    // ---- what quantisation buys -----------------------------------------
    println!("\n== Quantisation ==");
    let mut sim = Simulator::with_seed(3);
    let (data, _) = generate_features(&mut sim, &[(Activity::Walk, 200)]).expect("simulate");
    for mode in [Quantization::U16, Quantization::I8] {
        let q = QuantizedMatrix::encode(&data.features, mode).expect("encode");
        println!(
            "  {mode:?}: {:>7} bytes (raw {} bytes), max reconstruction error {:.5}",
            q.storage_bytes(),
            data.features.len() * 4,
            q.max_error(&data.features).expect("error")
        );
    }

    // ---- update latency projected onto devices ---------------------------
    println!("\n== Edge update latency ==");
    let mut rng = Rng64::new(9);
    let (train, _) = data.stratified_split(0.3, &mut rng).expect("split");
    let mut meter = LatencyMeter::new();
    let mut cfg = PiloteConfig::paper(3);
    cfg.net = NetConfig::small(); // wearable-class backbone
    cfg.max_epochs = 4;
    let (mut model, _) = meter.time("pretrain", || {
        Pilote::pretrain(cfg, &train, 40, SelectionStrategy::Herding).expect("pretrain")
    });
    let emb_probe = train.features.slice_rows(0, 1).expect("probe");
    meter.time("inference_1_window", || model.embed(&emb_probe));
    for device in
        [DeviceProfile::flagship_phone(), DeviceProfile::budget_phone(), DeviceProfile::wearable()]
    {
        println!(
            "  {:<15} pretrain {:>8.2}s   per-window inference {:>8.4}s",
            device.name,
            meter.projected_seconds("pretrain", &device).unwrap(),
            meter.projected_seconds("inference_1_window", &device).unwrap(),
        );
    }

    // ---- cloud vs edge traffic -------------------------------------------
    println!("\n== One day of HAR: cloud loop vs edge deployment ==");
    let window_bytes = (WINDOW_LEN * CHANNELS * 4) as u64;
    let mut rng2 = Rng64::new(1);
    let params = EmbeddingNet::new(NetConfig::paper(), &mut rng2).param_count();
    for (name, link) in [("wifi", LinkModel::wifi()), ("4g", LinkModel::cellular_4g())] {
        let cmp = cloud_vs_edge(&link, 86_400, window_bytes, model_bytes(params), budget.total_bytes());
        println!(
            "  {:<6} cloud: {:>8.0}s link-time, {:>7.1} MB/day | edge bootstrap: {:>6.2}s, {:>5.2} MB once",
            name,
            cmp.cloud_link_seconds,
            cmp.cloud_bytes as f64 / 1e6,
            cmp.edge_bootstrap_seconds,
            cmp.edge_bytes as f64 / 1e6
        );
    }
}
