// quick probe: can Saturation clamp erase an Inf spike in the same window?
use pilote::edge_sim::faults::{SensorFaultInjector, SensorFaultKind, SensorFaultRates};
use pilote::tensor::{Rng64, Tensor};

fn main() {
    let mut erased = 0u64;
    let mut spiked_windows = 0u64;
    for seed in 0..2000u64 {
        let mut rng = Rng64::new(seed.wrapping_mul(77));
        let mut w = Tensor::randn([30, 4], 0.0, 1.0, &mut rng);
        let mut inj = SensorFaultInjector::new(seed, SensorFaultRates { dropout: 0.0, stuck: 0.0, spike: 1.0, saturation: 1.0 });
        let kinds = inj.corrupt_window(&mut w);
        if kinds.contains(&SensorFaultKind::Spike) {
            spiked_windows += 1;
            if w.as_slice().iter().all(|v| v.is_finite()) {
                erased += 1;
            }
        }
    }
    println!("spiked windows: {spiked_windows}, fully finite despite spike: {erased}");
}
