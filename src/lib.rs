//! # PILOTE — incremental human-activity learning at the extreme edge
//!
//! A from-scratch Rust reproduction of *"On Handling Catastrophic
//! Forgetting for Incremental Learning of Human Physical Activity on the
//! Edge"* (Zuo, Arvanitakis & Hacid, EDBT 2023).
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`tensor`] | dense f32 tensors, RNG, linear algebra |
//! | [`nn`] | layers, losses, optimizers, training utilities |
//! | [`har_data`] | synthetic sensor simulator, preprocessing, features |
//! | [`core`] | the PILOTE learner, baselines, strategies, metrics |
//! | [`edge_sim`] | device profiles, memory accounting, quantisation, fault injection |
//! | [`magneto`] | cloud pre-training, deployments, the resilient edge device, federation, fleet orchestration |
//!
//! ## Quickstart
//!
//! ```
//! use pilote::prelude::*;
//!
//! // 1. Simulate a small labelled corpus (4 old classes + Run held out).
//! let mut sim = Simulator::with_seed(7);
//! let (data, _norm) = generate_features(
//!     &mut sim,
//!     &[
//!         (Activity::Still, 40),
//!         (Activity::Walk, 40),
//!         (Activity::Drive, 40),
//!         (Activity::Run, 40),
//!     ],
//! )
//! .unwrap();
//! let mut rng = Rng64::new(1);
//! let (train, test) = data.stratified_split(0.3, &mut rng).unwrap();
//! let old = train
//!     .filter_classes(&[Activity::Still.label(), Activity::Walk.label(), Activity::Drive.label()])
//!     .unwrap();
//! let new = train.filter_classes(&[Activity::Run.label()]).unwrap();
//!
//! // 2. Pre-train on the "cloud", then learn Run on the "edge".
//! let cfg = PiloteConfig::fast_test(7);
//! let (mut model, _) = Pilote::pretrain(cfg, &old, 15, SelectionStrategy::Herding).unwrap();
//! model.learn_new_class(&new, 15).unwrap();
//!
//! // 3. Classify.
//! let acc = model.accuracy(&test).unwrap();
//! assert!(acc > 0.5);
//! ```

pub use pilote_core as core;
pub use pilote_edge_sim as edge_sim;
pub use pilote_magneto as magneto;
pub use pilote_obs as obs;
pub use pilote_har_data as har_data;
pub use pilote_nn as nn;
pub use pilote_tensor as tensor;

/// The most common imports in one place.
pub mod prelude {
    pub use pilote_core::baselines::{pretrained_update, retrained_update};
    pub use pilote_core::pairs::PairScheme;
    pub use pilote_core::strategies::{run_strategy, Strategy};
    pub use pilote_core::{
        accuracy, select_exemplars, AccuracyMatrix, ConfusionMatrix, EmbeddingNet, NcmClassifier,
        NetConfig, AdaptiveThresholds, Pilote, PiloteConfig, QualityMonitor, QualityReport,
        QualityThresholds, SelectionStrategy, SessionRecord, SessionSummary, SupportSet,
        TaskGroup,
    };
    pub use pilote_edge_sim::{
        CrashPlan, DeviceProfile, FaultPlan, FlakyLink, LatencyMeter, LinkFaultRates, LinkModel,
        MemoryBudget, RetryPolicy, SensorFaultInjector, SensorFaultRates,
    };
    pub use pilote_magneto::{
        CloudServer, EdgeDevice, EdgeError, FederatedCoordinator, FederatedError, Fleet,
        FleetConfig, FleetPolicy, FleetStats, PolicyConfig, ScenarioRollup, TelemetryRollup,
        UpdateStatus,
    };
    pub use pilote_har_data::dataset::generate_features;
    pub use pilote_har_data::{Activity, Dataset, Simulator, SimulatorConfig, FEATURE_DIM};
    pub use pilote_nn::loss::ContrastiveForm;
    pub use pilote_tensor::{Rng64, Tensor};
}
