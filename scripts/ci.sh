#!/usr/bin/env bash
# Tier-1 gate: every change must pass this before merging (README §Testing).
#
# Runs, in order:
#   1. release build of the whole workspace
#   2. the full test suite (unit + integration + vendored stand-ins)
#   3. doctests (kept separate so a doc regression is named as such)
#   4. rustdoc with warnings denied (broken intra-doc links fail the gate)
#   5. clippy with warnings denied
#   6. the fault matrix (docs/RESILIENCE.md): the fault property suite
#      under several fixed fault seeds, plus the end-to-end `repro faults`
#      determinism check (ignored in the normal suite — two full sweeps)
#
# Usage: ./scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --workspace --release"
cargo build --workspace --release

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo test --workspace --doc -q"
cargo test --workspace --doc -q

step "cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

for seed in 11 4242 20230328; do
  step "fault matrix: cargo test --release --test fault_props (PILOTE_FAULT_SEED=$seed)"
  PILOTE_FAULT_SEED="$seed" cargo test --release --test fault_props -q
done

step "fault matrix: repro faults determinism (ignored test, release)"
cargo test --release -p pilote-bench exp_faults -- --ignored

printf '\nci.sh: all gates passed\n'
