#!/usr/bin/env bash
# Tier-1 gate: every change must pass this before merging (README §Testing).
#
# Runs, in order:
#   1. release build of the whole workspace
#   2. the full test suite (unit + integration + vendored stand-ins)
#   3. doctests (kept separate so a doc regression is named as such)
#   4. rustdoc with warnings denied (broken intra-doc links fail the gate)
#   5. clippy with warnings denied
#   6. the fault matrix (docs/RESILIENCE.md): the fault property suite
#      under several fixed fault seeds, plus the end-to-end `repro faults`
#      determinism check (ignored in the normal suite — two full sweeps)
#   7. the observability gate (docs/OBSERVABILITY.md): no std::time in the
#      telemetry/virtual-clock paths, `repro obs` byte-identical at
#      PILOTE_THREADS 1 vs 4, and a PILOTE_OBS=0 kill-switch run
#   8. the fleet gate (docs/FLEET.md): `repro fleet` run twice plus once
#      at PILOTE_THREADS=4, all three JSON outputs byte-compared
#   9. the quality gate (docs/QUALITY.md): `repro quality` run twice plus
#      once at PILOTE_THREADS=4, BENCH_quality.json and
#      trace_quality.json byte-compared; the trace must parse as JSON
#      with a non-empty traceEvents array and the A/B demo must show the
#      re-trained arm alerting while the PILOTE arm does not
#  10. the kernels gate (docs/KERNELS.md): `repro kernels` run twice plus
#      once at PILOTE_THREADS=4, the deterministic BENCH_kernels_check.json
#      byte-compared; oversubscribed rows must be flagged and claim no
#      speedup, and the packed GEMM must not lose to the legacy loop
#  11. the docs gate: every relative markdown link in README/DESIGN/
#      EXPERIMENTS/docs resolves, and every docs/*.md is reachable from
#      README.md by following links
#  12. the scaling gate (docs/SCALING.md): `repro fleet --scale large`
#      at a reduced device count, run twice plus once at
#      PILOTE_THREADS=4, BENCH_fleet_large.json byte-compared
#  13. the wire gate (docs/WIRE.md): `repro wire` run twice plus once at
#      PILOTE_THREADS=4, BENCH_wire.json byte-compared; i8-delta must
#      move fewer federated bytes than f32-full and undercut the
#      JSON-f32 baseline ≥4× at <1 point of old-class accuracy loss
#  14. the scenarios gate (docs/METRICS.md): `repro scenarios` run twice
#      plus once at PILOTE_THREADS=4, BENCH_scenarios.json byte-compared;
#      every strategy's accuracy matrix must cover the full schedule and
#      PILOTE's final forgetting must stay strictly below re-trained's
#  15. the index gate: `repro index` over the committed results/ BENCH
#      files must parse every one, resolve every headline metric, and
#      reproduce the committed BENCH_index.json byte-for-byte
#
# Usage: ./scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --workspace --release"
cargo build --workspace --release

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo test --workspace --doc -q"
cargo test --workspace --doc -q

step "cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

for seed in 11 4242 20230328; do
  step "fault matrix: cargo test --release --test fault_props (PILOTE_FAULT_SEED=$seed)"
  PILOTE_FAULT_SEED="$seed" cargo test --release --test fault_props -q
done

step "fault matrix: repro faults determinism (ignored test, release)"
cargo test --release -p pilote-bench exp_faults -- --ignored

# --- observability gate (docs/OBSERVABILITY.md) ---------------------------

step "obs: no host clock in the telemetry / virtual-clock paths"
# crates/obs must not import std::time at all; magneto's edge loop must not
# measure with Instant (device time is modeled from dispatched flops).
if grep -rn 'use std::time\|Instant' crates/obs/src/; then
  echo "obs gate: crates/obs must not touch std::time" >&2; exit 1
fi
if grep -n 'use std::time\|Instant' crates/magneto/src/edge.rs; then
  echo "obs gate: magneto::edge must not measure host time" >&2; exit 1
fi

step "obs: repro obs byte-identical at PILOTE_THREADS 1 vs 4"
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
PILOTE_THREADS=1 cargo run --release -q -p pilote-bench --bin repro -- \
  obs --quick --out "$obs_dir/t1"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  obs --quick --out "$obs_dir/t4"
cmp "$obs_dir/t1/BENCH_obs.json" "$obs_dir/t4/BENCH_obs.json"

step "obs: PILOTE_OBS=0 kill-switch run"
PILOTE_OBS=0 cargo run --release -q -p pilote-bench --bin repro -- \
  obs --quick --out "$obs_dir/off"

# --- fleet gate (docs/FLEET.md) -------------------------------------------

step "fleet: repro fleet byte-identical across runs and at PILOTE_THREADS=4"
cargo run --release -q -p pilote-bench --bin repro -- \
  fleet --quick --out "$obs_dir/f1"
cargo run --release -q -p pilote-bench --bin repro -- \
  fleet --quick --out "$obs_dir/f2"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  fleet --quick --out "$obs_dir/f4"
cmp "$obs_dir/f1/BENCH_fleet.json" "$obs_dir/f2/BENCH_fleet.json"
cmp "$obs_dir/f1/BENCH_fleet.json" "$obs_dir/f4/BENCH_fleet.json"

# --- quality gate (docs/QUALITY.md) ---------------------------------------

step "quality: repro quality byte-identical across runs and at PILOTE_THREADS=4"
cargo run --release -q -p pilote-bench --bin repro -- \
  quality --quick --out "$obs_dir/q1"
cargo run --release -q -p pilote-bench --bin repro -- \
  quality --quick --out "$obs_dir/q2"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  quality --quick --out "$obs_dir/q4"
cmp "$obs_dir/q1/BENCH_quality.json" "$obs_dir/q2/BENCH_quality.json"
cmp "$obs_dir/q1/BENCH_quality.json" "$obs_dir/q4/BENCH_quality.json"
cmp "$obs_dir/q1/trace_quality.json" "$obs_dir/q2/trace_quality.json"
cmp "$obs_dir/q1/trace_quality.json" "$obs_dir/q4/trace_quality.json"

step "quality: trace integrity + A/B alert split"
python3 - "$obs_dir/q1" << 'EOF'
import json, sys
out = sys.argv[1]
trace = json.load(open(f"{out}/trace_quality.json"))
events = trace["traceEvents"]
assert events, "trace_quality.json: traceEvents must be non-empty"
names = {e["name"] for e in events}
for phase in ("fleet.deploy", "fleet.session", "edge.update",
              "fleet.federated_round", "edge.quality_sample",
              "fleet.telemetry_rollup"):
    assert phase in names, f"trace missing a {phase} span"
bench = json.load(open(f"{out}/BENCH_quality.json"))
ab = bench["ab_demo"]
assert ab["pilote"]["alerts"] == 0, f"PILOTE arm must not alert: {ab}"
assert ab["retrained"]["alerts"] >= 1, f"re-trained arm must alert: {ab}"
print(f"quality gate: {len(events)} trace events, "
      f"A/B alerts pilote={ab['pilote']['alerts']} "
      f"retrained={ab['retrained']['alerts']}")
EOF

# --- policy gate (docs/POLICY.md) -----------------------------------------

step "policy: repro policy byte-identical across runs and at PILOTE_THREADS=4"
cargo run --release -q -p pilote-bench --bin repro -- \
  policy --quick --out "$obs_dir/p1"
cargo run --release -q -p pilote-bench --bin repro -- \
  policy --quick --out "$obs_dir/p2"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  policy --quick --out "$obs_dir/p4"
cmp "$obs_dir/p1/BENCH_policy.json" "$obs_dir/p2/BENCH_policy.json"
cmp "$obs_dir/p1/BENCH_policy.json" "$obs_dir/p4/BENCH_policy.json"

step "policy: closed-loop A/B — canary halt, repair ladder, fewer alerts"
python3 - "$obs_dir/p1" << 'EOF'
import json, sys
out = sys.argv[1]
bench = json.load(open(f"{out}/BENCH_policy.json"))
off, on = bench["policy_off"], bench["policy_on"]
summary = on["policy"]["summary"]
assert summary["halts"] >= 1, f"the poisoned canary must halt: {summary}"
assert summary["quarantines"] >= 2, f"both offenders must be quarantined: {summary}"
assert summary["degrades"] >= 1, f"the repeat offender must degrade: {summary}"
assert summary["rounds_completed"] >= 1, f"clean rounds must reach the fleet stage: {summary}"
assert on["forgetting_alerts"] < off["forgetting_alerts"], (
    f"the closed loop must end with strictly fewer forgetting alerts: "
    f"on={on['forgetting_alerts']} off={off['forgetting_alerts']}")
assert on["mean_final_old_class_accuracy"] > off["mean_final_old_class_accuracy"], (
    "self-healing must preserve fleet accuracy")
plan = on["policy"]["stage_plan"]
staged = sorted(plan["canary"] + plan["cohort"] + plan["fleet"])
assert staged == list(range(bench["schedule"]["devices"])), (
    f"stage plan must partition the roster exactly: {plan}")
assert plan["canary"], f"the canary stage is never empty: {plan}"
print(f"policy gate: halts={summary['halts']} quarantines={summary['quarantines']} "
      f"degrades={summary['degrades']} alerts on/off="
      f"{on['forgetting_alerts']}/{off['forgetting_alerts']}")
EOF

# --- kernels gate (docs/KERNELS.md) ---------------------------------------

step "kernels: repro kernels check file byte-identical across runs and at PILOTE_THREADS=4"
cargo run --release -q -p pilote-bench --bin repro -- \
  kernels --out "$obs_dir/k1"
cargo run --release -q -p pilote-bench --bin repro -- \
  kernels --out "$obs_dir/k2"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  kernels --out "$obs_dir/k4"
cmp "$obs_dir/k1/BENCH_kernels_check.json" "$obs_dir/k2/BENCH_kernels_check.json"
cmp "$obs_dir/k1/BENCH_kernels_check.json" "$obs_dir/k4/BENCH_kernels_check.json"

step "kernels: oversubscription flagged honestly; packed GEMM never loses to the legacy loop"
python3 - "$obs_dir/k1" << 'EOF'
import json, sys
out = sys.argv[1]
bench = json.load(open(f"{out}/BENCH_kernels.json"))
host = bench["host_hardware_threads"]
for row in bench["results"]:
    over = row["threads"] > host
    assert row["oversubscribed"] == over, (
        f"row {row['kernel']}@{row['threads']} must be flagged "
        f"oversubscribed={over} on a {host}-thread host: {row}")
    if over:
        assert row["speedup_vs_serial"] is None, (
            f"oversubscribed row must not claim a speedup: {row}")
check = json.load(open(f"{out}/BENCH_kernels_check.json"))
assert check["gemm_checksum"] == check["legacy_gemm_checksum"], (
    "packed GEMM must be bitwise-identical to the legacy loop")
assert bench["packed_vs_legacy_speedup"] >= 1.0, (
    f"packed single-thread GEMM must not be slower than the pre-packing "
    f"loop: {bench['packed_vs_legacy_speedup']:.2f}x")
print(f"kernels gate: simd={bench['simd']} packed vs legacy "
      f"{bench['packed_vs_legacy_speedup']:.2f}x, "
      f"{sum(r['oversubscribed'] for r in bench['results'])} oversubscribed "
      f"row(s) flagged")
EOF

# --- docs gate ------------------------------------------------------------

step "docs: relative links resolve; every docs/*.md reachable from README.md"
python3 - << 'EOF'
import os, re, sys
from collections import deque

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
roots = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "PAPER.md"]
pages = [p for p in roots if os.path.exists(p)]
pages += sorted(f"docs/{f}" for f in os.listdir("docs") if f.endswith(".md"))

def links(page):
    out = []
    for target in LINK.findall(open(page).read()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        out.append(os.path.normpath(
            os.path.join(os.path.dirname(page), target.split("#")[0])))
    return out

dangling = [(page, t) for page in pages for t in links(page)
            if not os.path.exists(t)]
for page, target in dangling:
    print(f"docs gate: {page} links to missing path {target}", file=sys.stderr)
if dangling:
    sys.exit(1)

seen, queue = {"README.md"}, deque(["README.md"])
while queue:
    page = queue.popleft()
    for target in links(page):
        if target.endswith(".md") and target not in seen:
            seen.add(target)
            queue.append(target)
unreachable = [p for p in pages if p.startswith("docs/") and p not in seen]
for page in unreachable:
    print(f"docs gate: {page} is not reachable from README.md", file=sys.stderr)
if unreachable:
    sys.exit(1)
print(f"docs gate: {len(pages)} pages checked, "
      f"{len(seen)} reachable from README.md")
EOF

# --- scaling gate (docs/SCALING.md) ---------------------------------------

step "scaling: reduced-roster fleet --scale large byte-identical across runs and threads"
cargo run --release -q -p pilote-bench --bin repro -- \
  fleet --scale large --devices 96 --out "$obs_dir/l1"
cargo run --release -q -p pilote-bench --bin repro -- \
  fleet --scale large --devices 96 --out "$obs_dir/l2"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  fleet --scale large --devices 96 --out "$obs_dir/l4"
cmp "$obs_dir/l1/BENCH_fleet_large.json" "$obs_dir/l2/BENCH_fleet_large.json"
cmp "$obs_dir/l1/BENCH_fleet_large.json" "$obs_dir/l4/BENCH_fleet_large.json"

# --- wire gate (docs/WIRE.md) ---------------------------------------------

step "wire: repro wire byte-identical across runs and at PILOTE_THREADS=4"
cargo run --release -q -p pilote-bench --bin repro -- \
  wire --quick --out "$obs_dir/w1"
cargo run --release -q -p pilote-bench --bin repro -- \
  wire --quick --out "$obs_dir/w2"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  wire --quick --out "$obs_dir/w4"
cmp "$obs_dir/w1/BENCH_wire.json" "$obs_dir/w2/BENCH_wire.json"
cmp "$obs_dir/w1/BENCH_wire.json" "$obs_dir/w4/BENCH_wire.json"

step "wire: i8-delta frontier — >=4x under the JSON baseline, <1 point accuracy loss"
python3 - "$obs_dir/w1" << 'EOF'
import json, sys
out = sys.argv[1]
bench = json.load(open(f"{out}/BENCH_wire.json"))
frontier = {r["config"]: r for r in bench["frontier"]}
f32_full, i8_delta = frontier["f32-full"], frontier["i8-delta"]
baseline = bench["json_f32_baseline_federated_bytes"]
savings = baseline / max(i8_delta["federated_bytes"], 1)
loss = f32_full["old_accuracy"] - i8_delta["old_accuracy"]
assert i8_delta["federated_bytes"] < f32_full["federated_bytes"], (
    f"i8-delta must move fewer federated bytes than f32-full: "
    f"{i8_delta['federated_bytes']} vs {f32_full['federated_bytes']}")
assert savings >= 4.0, (
    f"i8-delta must undercut the JSON-f32 baseline >=4x: {savings:.2f}x")
assert loss < 0.01, (
    f"i8-delta old-class accuracy loss must stay under 1 point: {loss:.4f}")
assert frontier["f32-delta"]["old_accuracy"] == f32_full["old_accuracy"], (
    "f32 delta encoding must be lossless")
print(f"wire gate: i8-delta {savings:.1f}x under JSON baseline, "
      f"old-class accuracy {i8_delta['old_accuracy']:.4f} vs "
      f"f32-full {f32_full['old_accuracy']:.4f}")
EOF

# --- scenarios gate (docs/METRICS.md) --------------------------------------

step "scenarios: repro scenarios byte-identical across runs and at PILOTE_THREADS=4"
cargo run --release -q -p pilote-bench --bin repro -- \
  scenarios --quick --out "$obs_dir/s1"
cargo run --release -q -p pilote-bench --bin repro -- \
  scenarios --quick --out "$obs_dir/s2"
PILOTE_THREADS=4 cargo run --release -q -p pilote-bench --bin repro -- \
  scenarios --quick --out "$obs_dir/s4"
cmp "$obs_dir/s1/BENCH_scenarios.json" "$obs_dir/s2/BENCH_scenarios.json"
cmp "$obs_dir/s1/BENCH_scenarios.json" "$obs_dir/s4/BENCH_scenarios.json"

step "scenarios: matrices cover the schedule; PILOTE forgets less than re-trained"
python3 - "$obs_dir/s1" << 'EOF'
import json, sys
out = sys.argv[1]
bench = json.load(open(f"{out}/BENCH_scenarios.json"))
sessions = 1 + len(bench["schedule"]["increments"])
tasks = 1 + len(bench["schedule"]["increments"])
for name in ("pilote", "retrained", "pretrained"):
    arm = bench["strategies"][name]
    rows = arm["matrix"]["rows"]
    assert len(rows) == sessions, f"{name}: want {sessions} matrix rows, got {len(rows)}"
    for row in rows:
        assert len(row["accuracies"]) == tasks and len(row["known"]) == tasks, (
            f"{name}: ragged matrix row: {row}")
    s = arm["summary"]
    assert s["sessions"] == sessions and s["tasks"] == tasks, f"{name}: summary shape: {s}"
    assert len(s["forgetting_curve"]) == sessions, f"{name}: forgetting-curve length"
split = bench["ab_split"]
assert split["pilote_final_forgetting"] < split["retrained_final_forgetting"], (
    f"PILOTE must forget strictly less than the re-trained baseline: {split}")
fleet = bench["fleet"]
assert fleet["devices"] >= 1 and len(fleet["mean_forgetting_curve"]) >= sessions, (
    f"fleet rollup must span the schedule: {fleet}")
print(f"scenarios gate: pilote forgetting {split['pilote_final_forgetting']:.4f} "
      f"< retrained {split['retrained_final_forgetting']:.4f}; "
      f"{fleet['devices']}-device rollup")
EOF

# --- index gate ------------------------------------------------------------

step "index: committed BENCH files parse, headlines resolve, manifest reproduces"
idx_dir="$obs_dir/index"
mkdir -p "$idx_dir"
for f in results/BENCH_*.json; do
  [ "$(basename "$f")" = "BENCH_index.json" ] && continue
  cp "$f" "$idx_dir/"
done
cargo run --release -q -p pilote-bench --bin repro -- index --out "$idx_dir"
cmp "$idx_dir/BENCH_index.json" results/BENCH_index.json

printf '\nci.sh: all gates passed\n'
