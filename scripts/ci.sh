#!/usr/bin/env bash
# Tier-1 gate: every change must pass this before merging (README §Testing).
#
# Runs, in order:
#   1. release build of the whole workspace
#   2. the full test suite (unit + integration + vendored stand-ins)
#   3. doctests (kept separate so a doc regression is named as such)
#   4. rustdoc with warnings denied (broken intra-doc links fail the gate)
#   5. clippy with warnings denied
#
# Usage: ./scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --workspace --release"
cargo build --workspace --release

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo test --workspace --doc -q"
cargo test --workspace --doc -q

step "cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

printf '\nci.sh: all gates passed\n'
