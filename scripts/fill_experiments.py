#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from the JSON files in results/.

Usage: python3 scripts/fill_experiments.py [results_dir]
Idempotent: placeholders are HTML comments that survive filling, and each
fill replaces the section between the marker and the next blank line.
"""
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = Path(sys.argv[1]) if len(sys.argv) > 1 else ROOT / "results"
DOC = ROOT / "EXPERIMENTS.md"


def load(name):
    path = RESULTS / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def fill(text, marker, content):
    if content is None:
        return text
    pattern = re.compile(rf"(<!-- {marker} -->)(.*?)(?=\n\n|\Z)", re.S)
    return pattern.sub(lambda m: m.group(1) + "\n" + content, text)


def main():
    text = DOC.read_text()

    t2 = load("table2.json")
    if t2:
        rows = [
            (
                r["new_class"],
                f"{r['pretrained']:.4f}",
                f"{r['retrained_mean']:.4f}±{r['retrained_std']:.4f}",
                f"{r['pilote_mean']:.4f}±{r['pilote_std']:.4f}",
            )
            for r in t2
        ]
        text = fill(text, "TABLE2_MEASURED", table(["New class", "Pre-trained", "Re-trained", "PILOTE"], rows))

    f4 = load("fig4.json")
    if f4:
        rows = [
            (
                name,
                f"{f4[key]['accuracy']:.4f}",
                f"{f4[key]['walk_recall']:.4f}",
                f"{f4[key]['run_recall']:.4f}",
                f"{f4[key]['run_precision']:.4f}",
            )
            for name, key in [("pre-trained", "pretrained"), ("re-trained", "retrained"), ("PILOTE", "pilote")]
        ]
        text = fill(
            text,
            "FIG4_MEASURED",
            table(["model", "accuracy", "Walk recall", "Run recall", "Run precision"], rows),
        )

    f5 = load("fig5.json")
    if f5:
        rows = [
            (name, f"{f5[key]['separation']:.3f}", f"{f5[key]['run_walk']:.3f}")
            for name, key in [("pre-trained", "pretrained"), ("re-trained", "retrained"), ("PILOTE", "pilote")]
        ]
        text = fill(text, "FIG5_MEASURED", table(["model", "global separation", "Run vs Walk"], rows))

    f6 = load("fig6.json")
    if f6:
        rows = [
            (p["strategy"], p["budget"], f"{p['pretrained']:.4f}", f"{p['retrained']:.4f}", f"{p['pilote']:.4f}")
            for p in f6
        ]
        text = fill(
            text,
            "FIG6_MEASURED",
            table(["selection", "exemplars/class", "Pre-trained", "Re-trained", "PILOTE"], rows),
        )

    f7 = load("fig7.json")
    if f7:
        rows = [
            (p["new_exemplars"], f"{p['pretrained']:.4f}", f"{p['retrained']:.4f}", f"{p['pilote']:.4f}")
            for p in f7
        ]
        text = fill(text, "FIG7_MEASURED", table(["Run exemplars", "Pre-trained", "Re-trained", "PILOTE"], rows))

    tm = load("timing.json")
    if tm:
        rows = [
            ("update epochs", tm["epochs"]),
            ("epoch wall-time (host)", f"{tm['epoch_seconds_host']:.3f} s"),
            ("accuracy after update", f"{tm['accuracy']:.4f}"),
            ("support set, f32", f"{tm['support_bytes_f32'] / 1000:.0f} KB"),
            ("support set, i8 quantised", f"{tm['support_bytes_i8'] / 1000:.0f} KB"),
            ("model parameters", f"{tm['model_param_bytes'] / 1e6:.2f} MB"),
        ]
        text = fill(text, "TIMING_MEASURED", table(["quantity", "measured"], rows))

    aa = load("ablate_alpha.json")
    if aa:
        rows = [(f"{r['alpha']:.2f}", f"{r['accuracy']:.4f}", f"{r['old_accuracy']:.4f}") for r in aa]
        text = fill(text, "ALPHA_MEASURED", table(["α", "accuracy", "old-class accuracy"], rows))

    am = load("ablate_margin.json")
    if am:
        rows = [(r["config"], f"{r['accuracy']:.4f}") for r in am]
        text = fill(text, "MARGIN_MEASURED", table(["configuration", "accuracy"], rows))

    ap = load("ablate_pairs.json")
    if ap:
        rows = [(r["scheme"], f"{r['accuracy']:.4f}", f"{r['seconds']:.1f} s") for r in ap]
        text = fill(text, "PAIRS_MEASURED", table(["scheme", "accuracy", "update time"], rows))

    asr = load("ablate_strategies.json")
    if asr:
        rows = [
            (r["strategy"], f"{r['accuracy']:.4f}", f"{r['old_accuracy']:.4f}", f"{r['new_accuracy']:.4f}")
            for r in asr
        ]
        text = fill(
            text,
            "STRATEGIES_MEASURED",
            table(["strategy", "accuracy", "old-class acc", "new-class acc"], rows),
        )

    cv = load("cloud_vs_edge.json")
    if cv:
        rows = [
            (r["link"], f"{r['cloud_seconds_per_day']:.0f} s/day", f"{r['edge_bootstrap_seconds']:.2f} s once")
            for r in cv
        ]
        text = fill(text, "CLOUD_MEASURED", table(["link", "cloud loop", "edge bootstrap"], rows))

    DOC.write_text(text)
    print("EXPERIMENTS.md updated from", RESULTS)


if __name__ == "__main__":
    main()
